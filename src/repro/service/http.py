"""Minimal asyncio HTTP/1.1 + SSE transport for :class:`ServiceApp`.

Pure stdlib (``asyncio`` streams — no framework dependency): a small,
audited surface that decodes JSON bodies into the typed request forms of
:mod:`repro.service.protocol`, dispatches to :class:`~repro.service.app
.ServiceApp`, and encodes the typed responses back.  Versioned wire API:

=======  ============================  =====================================
Method   Path                          Meaning
=======  ============================  =====================================
GET      ``/v1/healthz``               liveness + engine summary
GET      ``/v1/ledger``                per-task budget accounting
GET      ``/v1/telemetry``             governor usage + metrics snapshot
GET      ``/v1/metrics``               Prometheus text exposition
GET      ``/v1/tasks/{name}/reports``  one tenant's retained reports
GET      ``/v1/stream``                SSE stream of ``RoundReport`` events
POST     ``/v1/tasks``                 submit an ``EstimationTask``
POST     ``/v1/rounds``                run governed estimation round(s)
POST     ``/v1/shutdown``              graceful stop (drains connections)
=======  ============================  =====================================

Concurrency: **mutating** requests (``POST /v1/tasks``, ``/v1/rounds``)
run on a dedicated single worker thread, so the event loop — and with it
every observer endpoint and SSE heartbeat — stays responsive during long
rounds (the engine's session lock/round barrier split from PR 5 is what
makes the observer calls non-blocking engine-side).  Errors map to wire
payloads and HTTP statuses in exactly one place, :mod:`repro.errors`.

SSE contract (``GET /v1/stream[?task=NAME][&replay=0]``): events carry
``id:`` (monotonic sequence), ``event: report`` and a JSON ``data:`` line
``{"seq", "task", "round_index", "report"}``; a comment heartbeat is sent
every ``heartbeat`` seconds while no report is produced.  Reports are
published as each governed round completes, so a client connected during
a long multi-round ``POST /v1/rounds`` sees earlier rounds' reports while
later rounds are still executing.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from ..core.wire import stamp
from ..errors import (
    ReproError,
    WireFormatError,
    http_status_of,
)
from ..obs import OBS
from .app import ServiceApp
from .protocol import RoundRequest, TaskRequest, error_response

#: Largest accepted request body, bytes (we serve JSON control messages).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Content type of the ``/v1/metrics`` Prometheus text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Known endpoint labels (templated), keeping metric cardinality bounded
#: no matter what paths clients probe.
_ENDPOINT_LABELS = {
    "/v1/healthz": "/v1/healthz",
    "/v1/ledger": "/v1/ledger",
    "/v1/telemetry": "/v1/telemetry",
    "/v1/tasks": "/v1/tasks",
    "/v1/rounds": "/v1/rounds",
    "/v1/shutdown": "/v1/shutdown",
}


def _endpoint_label(path: str) -> str:
    """A bounded-cardinality endpoint label for a request path."""
    known = _ENDPOINT_LABELS.get(path)
    if known is not None:
        return known
    if path.startswith("/v1/tasks/") and path.endswith("/reports"):
        return "/v1/tasks/{name}/reports"
    return "other"

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class _HttpError(Exception):
    """Transport-level error (bad request line, unknown route, ...)."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


class ServiceServer:
    """One :class:`ServiceApp` served over asyncio HTTP/JSON."""

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat: float = 1.0,
    ):
        self.app = app
        self.host = host
        self.port = port
        self.heartbeat = heartbeat
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        # One worker: mutating handlers are serialized off the event loop,
        # so a long round never blocks observers or heartbeats.
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start, then run until :meth:`request_shutdown` (or the
        ``POST /v1/shutdown`` endpoint) fires; then close cleanly."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Long-lived SSE streams idle in queue.get(); cancel them so the
        # loop can wind down instead of abandoning pending tasks.
        for task in tuple(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._worker.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._write_json(
                    writer, exc.status,
                    stamp({"error": {
                        "code": "BAD_REQUEST",
                        "error_type": "HttpError",
                        "message": str(exc),
                        "details": {},
                    }}),
                )
                return
            if method == "GET" and path == "/v1/stream":
                await self._stream(writer, query)
                return
            if method == "GET" and path == "/v1/metrics":
                # Served outside _dispatch so the scrape itself never
                # perturbs the request-latency histograms it reports.
                await self._write_text(
                    writer, 200, OBS.to_prometheus(),
                    PROMETHEUS_CONTENT_TYPE,
                )
                return
            if not OBS.enabled:
                status, payload = await self._dispatch(method, path, body)
            else:
                started = perf_counter()
                status, payload = await self._dispatch(method, path, body)
                endpoint = _endpoint_label(path)
                OBS.histogram(
                    "repro_http_request_seconds", {"endpoint": endpoint}
                ).observe(perf_counter() - started)
                OBS.counter(
                    "repro_http_requests_total",
                    {"endpoint": endpoint, "status": str(status)},
                ).inc()
            await self._write_json(writer, status, payload)
        except (
            ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError
        ):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down with this connection in flight
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionResetError):
            raise _HttpError(400, "unreadable request line") from None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        split = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method.upper(), split.path, query, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes):
        try:
            if method == "GET":
                if path == "/v1/healthz":
                    return 200, self.app.health().to_wire()
                if path == "/v1/ledger":
                    return 200, self.app.ledger().to_wire()
                if path == "/v1/telemetry":
                    return 200, self.app.telemetry().to_wire()
                if path.startswith("/v1/tasks/") and path.endswith("/reports"):
                    name = path[len("/v1/tasks/"):-len("/reports")]
                    return 200, self.app.reports(name).to_wire()
                raise _HttpError(404, f"no route for GET {path}")
            if method == "POST":
                if path == "/v1/tasks":
                    request = TaskRequest.from_wire(self._json_body(body))
                    response = await self._in_worker(self.app.submit, request)
                    return 202, response.to_wire()
                if path == "/v1/rounds":
                    request = RoundRequest.from_wire(self._json_body(body))
                    response = await self._in_worker(
                        self.app.run_rounds, request
                    )
                    return 200, response.to_wire()
                if path == "/v1/shutdown":
                    self.request_shutdown()
                    return 202, stamp({"status": "shutting down"})
                raise _HttpError(404, f"no route for POST {path}")
            raise _HttpError(405, f"method {method} not supported")
        except _HttpError as exc:
            return exc.status, stamp({"error": {
                "code": "BAD_REQUEST",
                "error_type": "HttpError",
                "message": str(exc),
                "details": {},
            }})
        except ReproError as exc:
            return http_status_of(exc), error_response(exc)
        except Exception as exc:  # noqa: BLE001 - service boundary
            return http_status_of(exc), error_response(exc)

    def _json_body(self, body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise WireFormatError("request body must be a JSON object")
        return payload

    async def _in_worker(self, handler, request):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._worker, handler, request)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    async def _write_json(self, writer, status: int, payload: dict) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        await self._write_body(writer, status, body, "application/json")

    async def _write_text(
        self, writer, status: int, text: str, content_type: str
    ) -> None:
        await self._write_body(
            writer, status, text.encode("utf-8"), content_type
        )

    async def _write_body(
        self, writer, status: int, body: bytes, content_type: str
    ) -> None:
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    async def _stream(self, writer, query: dict) -> None:
        task_filter = query.get("task")
        replay = query.get("replay", "1") not in ("0", "false", "no")
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def listener(event: dict) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        backlog = self.app.subscribe(listener)
        try:
            if replay:
                for event in backlog:
                    await self._write_event(writer, event, task_filter)
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=self.heartbeat
                    )
                except asyncio.TimeoutError:
                    writer.write(b": heartbeat\n\n")
                    await writer.drain()
                    continue
                await self._write_event(writer, event, task_filter)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client closed the stream — the normal way out
        finally:
            self.app.unsubscribe(listener)

    async def _write_event(self, writer, event: dict, task_filter) -> None:
        if task_filter is not None and event["task"] != task_filter:
            return
        data = json.dumps(stamp(dict(event)), allow_nan=False)
        writer.write(
            f"id: {event['seq']}\nevent: report\ndata: {data}\n\n"
            .encode("utf-8")
        )
        await writer.drain()
