"""Typed request/response forms shared by the facade and the HTTP layer.

The service plane is a *thin transport*: every payload that crosses the
wire is one of the dataclasses below, and :class:`~repro.service.app
.ServiceApp` consumes/produces exactly the same objects in-process — the
HTTP server (:mod:`repro.service.http`) only decodes JSON into them and
encodes them back.  Tests and benchmarks can therefore drive the facade
directly and compare bit-for-bit with what crossed HTTP.

All forms follow the wire versioning policy of :mod:`repro.core.wire`:
``to_wire()`` stamps ``schema_version``; ``from_wire()`` is forward
tolerant (unknown keys ignored, missing version = v0).  Malformed payloads
raise :class:`~repro.errors.WireFormatError`, which the transport maps to
a 400 through :func:`repro.errors.wire_error`.

Aggregate specs cross the wire as small JSON descriptions resolved against
the service's schema by :func:`spec_from_wire`::

    {"kind": "count"}
    {"kind": "count", "where": {"A0": "A0_1"}, "name": "slice"}
    {"kind": "sum", "measure": "price", "where": {...}}
    {"kind": "avg", "measure": "price"}
    {"kind": "proportion", "where": {...}}
    {"kind": "size_change", "base": {...}}
    {"kind": "running_average", "window": 5, "base": {...}}
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..api.engine import EstimationTask
from ..core.aggregates import (
    AnySpec,
    avg_measure,
    count_all,
    count_where,
    proportion_where,
    running_average,
    size_change,
    sum_measure,
)
from ..core.wire import stamp
from ..errors import WireFormatError, wire_error
from ..hiddendb.schema import Schema

#: Per-task round outcome statuses (see :class:`RoundOutcome`).
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_DEFERRED = "deferred"
STATUS_REFUSED = "refused"


# ----------------------------------------------------------------------
# Aggregate specs over the wire
# ----------------------------------------------------------------------
def spec_from_wire(schema: Schema, payload: Mapping) -> AnySpec:
    """Build an aggregate spec from its wire description.

    Raises :class:`WireFormatError` on unknown kinds or missing required
    keys; schema-level problems (unknown attribute/measure/label) surface
    as :class:`~repro.errors.SchemaError` from the spec factories.
    """
    if not isinstance(payload, Mapping):
        raise WireFormatError(f"not a spec description: {payload!r}")
    kind = payload.get("kind", "count")
    name = payload.get("name")
    where = payload.get("where")
    if where is not None and not isinstance(where, Mapping):
        raise WireFormatError(f"spec 'where' must be a mapping: {where!r}")
    if kind == "count":
        if where:
            return count_where(schema, where, name=name)
        return count_all(name) if name else count_all()
    if kind == "sum":
        measure = payload.get("measure")
        if not measure:
            raise WireFormatError("sum spec needs a 'measure'")
        return sum_measure(schema, measure, where, name=name)
    if kind == "avg":
        measure = payload.get("measure")
        if not measure:
            raise WireFormatError("avg spec needs a 'measure'")
        return avg_measure(schema, measure, where, name=name)
    if kind == "proportion":
        if not where:
            raise WireFormatError("proportion spec needs a 'where'")
        return proportion_where(schema, where, name=name)
    if kind == "size_change":
        base = payload.get("base")
        base_spec = _linear_base(schema, base) if base is not None else None
        if name:
            return size_change(base_spec, name=name)
        return size_change(base_spec)
    if kind == "running_average":
        window = payload.get("window")
        if not isinstance(window, int) or window < 1:
            raise WireFormatError(
                "running_average spec needs a positive integer 'window'"
            )
        base = payload.get("base")
        base_spec = _linear_base(schema, base) if base is not None else None
        return running_average(window, base_spec, name=name)
    raise WireFormatError(f"unknown spec kind {kind!r}")


def _linear_base(schema: Schema, payload: Mapping) -> AnySpec:
    base = spec_from_wire(schema, payload)
    kind = payload.get("kind", "count")
    if kind not in ("count", "sum"):
        raise WireFormatError(
            f"trans-round base spec must be linear (count/sum), got {kind!r}"
        )
    return base


def specs_from_wire(schema: Schema, payloads) -> list[AnySpec]:
    """Build the spec list of a task request (at least one required)."""
    if not isinstance(payloads, (list, tuple)) or not payloads:
        raise WireFormatError(
            "task request needs a non-empty 'specs' list"
        )
    return [spec_from_wire(schema, payload) for payload in payloads]


def spec_to_wire(spec: AnySpec) -> dict:
    """The wire description that rebuilds ``spec`` via :func:`spec_from_wire`.

    Inverse of :func:`spec_from_wire` for every spec built by the factory
    helpers of :mod:`repro.core.aggregates` (they record their own
    ``wire_form``).  Specs carrying custom callables — a hand-built
    ``AggregateSpec`` or a factory call with a residual ``selection``
    predicate — have no wire description and raise
    :class:`~repro.errors.WireFormatError`; ``Engine.save`` surfaces this
    for tasks that cannot round-trip.
    """
    wire = getattr(spec, "wire_form", None)
    if wire is None:
        raise WireFormatError(
            f"spec {getattr(spec, 'name', spec)!r} cannot cross the wire: "
            "it was not built by a wire-capable aggregate factory (custom "
            "callables are not serializable)"
        )
    return dict(wire)


def specs_to_wire(specs) -> list[dict]:
    """Wire descriptions of every spec (see :func:`spec_to_wire`)."""
    return [spec_to_wire(spec) for spec in specs]


# ----------------------------------------------------------------------
# Wire-form machinery
# ----------------------------------------------------------------------
class WireForm:
    """Mixin: stamped ``to_wire()`` + forward-tolerant ``from_wire()``."""

    def to_wire(self) -> dict:
        return stamp(dataclasses.asdict(self))

    @classmethod
    def from_wire(cls, payload: Mapping):
        if not isinstance(payload, Mapping):
            raise WireFormatError(
                f"{cls.__name__} payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        try:
            return cls(**{
                key: value for key, value in payload.items() if key in known
            })
        except TypeError as exc:
            # Missing required fields surface here.
            raise WireFormatError(
                f"bad {cls.__name__} payload: {exc}"
            ) from None


def error_response(exc: BaseException) -> dict:
    """The stamped wire envelope of an error (see :func:`repro.errors
    .wire_error` for the inner payload — the single mapping point)."""
    return stamp({"error": wire_error(exc)})


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TaskRequest(WireForm):
    """``POST /v1/tasks`` body: one tenant's estimation assignment.

    Mirrors :class:`~repro.api.engine.EstimationTask` field for field,
    with specs as wire descriptions (see :func:`spec_from_wire`) and
    options restricted to JSON-expressible estimator keywords.
    """

    name: str
    estimator: str = "RS"
    specs: list = dataclasses.field(
        default_factory=lambda: [{"kind": "count"}]
    )
    budget: int | None = None
    budget_share: float | None = None
    seed: int | None = None
    options: dict = dataclasses.field(default_factory=dict)

    def to_task(self, schema: Schema) -> EstimationTask:
        """The in-process task this request describes (facade parity:
        submitting the result directly is bit-identical to HTTP)."""
        if not isinstance(self.name, str) or not self.name:
            raise WireFormatError("task request needs a non-empty 'name'")
        if not isinstance(self.estimator, str):
            raise WireFormatError("task request 'estimator' must be a name")
        return EstimationTask(
            self.name,
            specs_from_wire(schema, self.specs),
            estimator=self.estimator,
            budget=self.budget,
            budget_share=self.budget_share,
            seed=self.seed,
            options=self.options or {},
        )


@dataclasses.dataclass
class RoundRequest(WireForm):
    """``POST /v1/rounds`` body: run estimation rounds.

    Parameters
    ----------
    rounds:
        Number of consecutive rounds to run (default 1).
    parallel:
        Worker threads per round (``None`` = the engine config's
        ``parallelism``); results are bit-identical either way.
    tasks:
        Restrict the round to these task names (``None`` = all active).
    advance:
        Advance the database round between consecutive rounds of this
        request (the paper's round clock).  The first round always runs
        against the current round.
    """

    rounds: int = 1
    parallel: int | None = None
    tasks: list | None = None
    advance: bool = False


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TaskAccepted(WireForm):
    """``POST /v1/tasks`` response."""

    name: str
    estimator: str
    budget_per_round: int
    round_index: int
    tenants: int


@dataclasses.dataclass
class RoundOutcome(WireForm):
    """One task's outcome within one round.

    ``status`` is one of ``ok`` / ``degraded`` / ``deferred`` /
    ``refused``; ``report`` is the :class:`RoundReport` wire form when the
    task ran, ``governor`` the admission record (action, factor, granted)
    when the governor intervened, and ``error`` the wire error payload on
    refusal — degradation is always *observable*, never silent.
    """

    task: str
    status: str
    report: dict | None = None
    governor: dict | None = None
    error: dict | None = None


@dataclasses.dataclass
class RoundResult(WireForm):
    """One round's outcomes, in deterministic submission order."""

    round_index: int
    outcomes: list = dataclasses.field(default_factory=list)

    def to_wire(self) -> dict:
        return stamp({
            "round_index": self.round_index,
            "outcomes": [
                outcome.to_wire() if isinstance(outcome, RoundOutcome)
                else outcome
                for outcome in self.outcomes
            ],
        })


@dataclasses.dataclass
class RoundsResponse(WireForm):
    """``POST /v1/rounds`` response: every executed round."""

    results: list = dataclasses.field(default_factory=list)

    def to_wire(self) -> dict:
        return stamp({
            "results": [
                result.to_wire() if isinstance(result, RoundResult)
                else result
                for result in self.results
            ],
        })


@dataclasses.dataclass
class ReportsResponse(WireForm):
    """``GET /v1/tasks/{name}/reports`` response."""

    task: str
    rounds_run: int
    queries_total: int
    reports: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class LedgerResponse(WireForm):
    """``GET /v1/ledger`` response: the engine's budget accounting."""

    round_index: int
    ledger: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class TelemetryResponse(WireForm):
    """``GET /v1/telemetry`` response: the governor's usage snapshots plus
    the engine's observability snapshot.

    ``governor`` keeps its pre-PR-9 shape for one release; ``metrics`` is
    the stamped :meth:`repro.api.Engine.metrics` payload; ``tuning`` the
    stamped :meth:`repro.api.Engine.tuning_report` audit (old clients
    ignore both — ``WireForm.from_wire`` is forward-tolerant)."""

    round_index: int
    governor: dict = dataclasses.field(default_factory=dict)
    metrics: dict = dataclasses.field(default_factory=dict)
    tuning: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class HealthResponse(WireForm):
    """``GET /v1/healthz`` response."""

    status: str
    round_index: int
    backend: str
    tuples: int
    tasks: list = dataclasses.field(default_factory=list)
