"""Service plane: the estimation engine over an HTTP/JSON wire API.

Layers (each importable on its own):

* :mod:`repro.service.protocol` — typed request/response forms shared by
  the in-process facade and the HTTP transport (versioned wire schema).
* :mod:`repro.service.governor` — per-tenant budget governor: windowed
  ceilings with the shrink_k → widen_rounds → refuse degradation ladder.
* :mod:`repro.service.app` — :class:`ServiceApp`, the whole service
  minus the transport.
* :mod:`repro.service.http` — minimal asyncio HTTP/1.1 + SSE server.
* :mod:`repro.service.client` — blocking stdlib client with typed-error
  rehydration.
* :mod:`repro.service.cli` — the ``repro-serve`` entry point.
"""

from .app import ServiceApp
from .client import ServiceClient
from .governor import (
    ACTION_ALLOW,
    ACTION_REFUSE,
    ACTION_SHRINK,
    ACTION_WIDEN,
    Admission,
    BudgetGovernor,
    GovernorConfig,
    TenantUsage,
)
from .http import ServiceServer
from .protocol import (
    STATUS_DEFERRED,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REFUSED,
    HealthResponse,
    LedgerResponse,
    ReportsResponse,
    RoundOutcome,
    RoundRequest,
    RoundResult,
    RoundsResponse,
    TaskAccepted,
    TaskRequest,
    TelemetryResponse,
    error_response,
    spec_from_wire,
    specs_from_wire,
)

__all__ = [
    "ACTION_ALLOW",
    "ACTION_REFUSE",
    "ACTION_SHRINK",
    "ACTION_WIDEN",
    "Admission",
    "BudgetGovernor",
    "GovernorConfig",
    "HealthResponse",
    "LedgerResponse",
    "ReportsResponse",
    "RoundOutcome",
    "RoundRequest",
    "RoundResult",
    "RoundsResponse",
    "STATUS_DEFERRED",
    "STATUS_DEGRADED",
    "STATUS_OK",
    "STATUS_REFUSED",
    "ServiceApp",
    "ServiceClient",
    "ServiceServer",
    "TaskAccepted",
    "TaskRequest",
    "TelemetryResponse",
    "TenantUsage",
    "error_response",
    "spec_from_wire",
    "specs_from_wire",
]
