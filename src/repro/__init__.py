"""repro — Aggregate Estimation Over Dynamic Hidden Web Databases.

A faithful, self-contained reproduction of Liu, Thirumuruganathan, Zhang &
Das (VLDB 2014): estimate and track COUNT / SUM / AVG aggregates over a
database hidden behind a restrictive top-k search interface with a per-round
query budget, while the database changes between rounds.

Quick start (the :mod:`repro.api` facade)::

    from repro.api import Engine, EngineConfig, EstimationTask
    from repro import count_all
    from repro.data import autos_snapshot

    schema, payloads = autos_snapshot(total=20_000, seed=7)
    engine = Engine(
        EngineConfig(k=100, budget_per_round=300, seed=7), schema=schema
    )
    engine.load(payloads[:18_000])
    engine.submit(EstimationTask("census", [count_all()], estimator="RS"))
    report = engine.run_round()["census"]
    print(report.estimates["count"], "vs truth", len(engine.db))

The pre-facade entry points (building ``HiddenDatabase`` /
``TopKInterface`` / estimator classes by hand, ``Experiment`` kwargs)
remain supported and produce bit-identical estimates — see the migration
table in the README.
"""

from .api import (
    Engine,
    EngineConfig,
    EstimationTask,
    available_estimators,
    register_estimator,
    resolve_estimator,
)
from .core import (
    AggregateSpec,
    ESTIMATOR_CLASSES,
    EstimatorBase,
    QueryTree,
    RatioSpec,
    ReissueEstimator,
    RestartEstimator,
    RoundReport,
    RsEstimator,
    RunningAverageSpec,
    SizeChangeSpec,
    avg_measure,
    count_all,
    count_where,
    proportion_where,
    running_average,
    size_change,
    sum_measure,
)
from .errors import (
    EstimationError,
    ExperimentError,
    QueryBudgetExhausted,
    QueryError,
    ReproError,
    SchemaError,
)
from .hiddendb import (
    Attribute,
    ConjunctiveQuery,
    HiddenDatabase,
    HiddenTuple,
    QueryResult,
    QuerySession,
    QueryStatus,
    Schema,
    TopKInterface,
    available_backends,
    boolean_schema,
    get_default_backend,
    set_default_backend,
    using_backend,
)

__version__ = "1.1.0"

__all__ = [
    "AggregateSpec",
    "Attribute",
    "ConjunctiveQuery",
    "ESTIMATOR_CLASSES",
    "Engine",
    "EngineConfig",
    "EstimationError",
    "EstimationTask",
    "EstimatorBase",
    "ExperimentError",
    "HiddenDatabase",
    "HiddenTuple",
    "QueryBudgetExhausted",
    "QueryError",
    "QueryResult",
    "QuerySession",
    "QueryStatus",
    "QueryTree",
    "RatioSpec",
    "ReissueEstimator",
    "ReproError",
    "RestartEstimator",
    "RoundReport",
    "RsEstimator",
    "RunningAverageSpec",
    "Schema",
    "SchemaError",
    "SizeChangeSpec",
    "TopKInterface",
    "available_backends",
    "available_estimators",
    "avg_measure",
    "boolean_schema",
    "count_all",
    "count_where",
    "get_default_backend",
    "proportion_where",
    "register_estimator",
    "resolve_estimator",
    "running_average",
    "set_default_backend",
    "size_change",
    "sum_measure",
    "using_backend",
    "__version__",
]
