"""repro — Aggregate Estimation Over Dynamic Hidden Web Databases.

A faithful, self-contained reproduction of Liu, Thirumuruganathan, Zhang &
Das (VLDB 2014): estimate and track COUNT / SUM / AVG aggregates over a
database hidden behind a restrictive top-k search interface with a per-round
query budget, while the database changes between rounds.

Quick start::

    from repro import (
        HiddenDatabase, TopKInterface, RsEstimator, count_all,
    )
    from repro.data import autos_snapshot

    schema, payloads = autos_snapshot(total=20_000, seed=7)
    db = HiddenDatabase(schema)
    for values, measures in payloads[:18_000]:
        db.insert(values, measures)
    interface = TopKInterface(db, k=100)
    estimator = RsEstimator(interface, [count_all()], budget_per_round=300)
    report = estimator.run_round()
    print(report.estimates["count"], "vs truth", len(db))
"""

from .core import (
    AggregateSpec,
    ESTIMATOR_CLASSES,
    EstimatorBase,
    QueryTree,
    RatioSpec,
    ReissueEstimator,
    RestartEstimator,
    RoundReport,
    RsEstimator,
    RunningAverageSpec,
    SizeChangeSpec,
    avg_measure,
    count_all,
    count_where,
    proportion_where,
    running_average,
    size_change,
    sum_measure,
)
from .errors import (
    EstimationError,
    ExperimentError,
    QueryBudgetExhausted,
    QueryError,
    ReproError,
    SchemaError,
)
from .hiddendb import (
    Attribute,
    ConjunctiveQuery,
    HiddenDatabase,
    HiddenTuple,
    QueryResult,
    QuerySession,
    QueryStatus,
    Schema,
    TopKInterface,
    available_backends,
    boolean_schema,
    get_default_backend,
    set_default_backend,
    using_backend,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateSpec",
    "Attribute",
    "ConjunctiveQuery",
    "ESTIMATOR_CLASSES",
    "EstimationError",
    "EstimatorBase",
    "ExperimentError",
    "HiddenDatabase",
    "HiddenTuple",
    "QueryBudgetExhausted",
    "QueryError",
    "QueryResult",
    "QuerySession",
    "QueryStatus",
    "QueryTree",
    "RatioSpec",
    "ReissueEstimator",
    "ReproError",
    "RestartEstimator",
    "RoundReport",
    "RsEstimator",
    "RunningAverageSpec",
    "Schema",
    "SchemaError",
    "SizeChangeSpec",
    "TopKInterface",
    "available_backends",
    "avg_measure",
    "boolean_schema",
    "count_all",
    "count_where",
    "get_default_backend",
    "proportion_where",
    "running_average",
    "set_default_backend",
    "size_change",
    "sum_measure",
    "using_backend",
    "__version__",
]
