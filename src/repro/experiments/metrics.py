"""Result containers and accuracy metrics for experiments.

The paper reports *relative error* ``|theta~ - theta| / |theta|`` per round
(averaged over trials) plus raw-estimate error bars.  An
:class:`ExperimentResult` stores everything needed for both (and for the
efficiency figures: query and drill-down counts).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import ExperimentError


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / |truth|; NaN-safe; inf when truth is zero."""
    if math.isnan(estimate) or math.isnan(truth):
        return math.nan
    if truth == 0:
        return math.inf if estimate != 0 else 0.0
    return abs(estimate - truth) / abs(truth)


class ExperimentResult:
    """Estimates, truths and costs of one experiment (all trials).

    Layout: ``estimates[estimator][trial][round_position][spec]`` with
    parallel ``truths[trial][round_position][spec]``; ``rounds`` maps round
    positions to the database's round indexes.
    """

    def __init__(
        self,
        name: str,
        estimator_names: Sequence[str],
        spec_names: Sequence[str],
    ):
        self.name = name
        self.estimator_names = list(estimator_names)
        self.spec_names = list(spec_names)
        self.rounds: list[int] = []
        self.truths: list[list[dict[str, float]]] = []
        self.estimates: dict[str, list[list[dict[str, float]]]] = {
            estimator: [] for estimator in estimator_names
        }
        self.queries: dict[str, list[list[int]]] = {
            estimator: [] for estimator in estimator_names
        }
        self.drilldowns: dict[str, list[list[int]]] = {
            estimator: [] for estimator in estimator_names
        }

    # ------------------------------------------------------------------
    # Recording (used by the runner)
    # ------------------------------------------------------------------
    def start_trial(self) -> None:
        self.truths.append([])
        for estimator in self.estimator_names:
            self.estimates[estimator].append([])
            self.queries[estimator].append([])
            self.drilldowns[estimator].append([])

    def record_truth(self, round_index: int, snapshot: dict[str, float]) -> None:
        if len(self.truths) == 1:
            self.rounds.append(round_index)
        self.truths[-1].append(dict(snapshot))

    def record_report(
        self,
        estimator: str,
        estimates: dict[str, float],
        queries_used: int,
        drilldowns: int,
    ) -> None:
        self.estimates[estimator][-1].append(dict(estimates))
        self.queries[estimator][-1].append(queries_used)
        self.drilldowns[estimator][-1].append(drilldowns)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A strict-JSON-safe payload of everything recorded so far.

        Non-finite floats are wire-encoded and the payload carries
        ``schema_version`` (see :mod:`repro.core.wire`) so
        ``json.dumps(result.to_dict(), allow_nan=False)`` works and
        :meth:`from_dict` restores the result exactly.
        """
        from ..core.wire import encode_float_map, stamp

        return stamp({
            "name": self.name,
            "estimator_names": list(self.estimator_names),
            "spec_names": list(self.spec_names),
            "rounds": list(self.rounds),
            "truths": [
                [encode_float_map(snapshot) for snapshot in trial]
                for trial in self.truths
            ],
            "estimates": {
                estimator: [
                    [encode_float_map(snapshot) for snapshot in trial]
                    for trial in trials
                ]
                for estimator, trials in self.estimates.items()
            },
            "queries": {
                estimator: [list(trial) for trial in trials]
                for estimator, trials in self.queries.items()
            },
            "drilldowns": {
                estimator: [list(trial) for trial in trials]
                for estimator, trials in self.drilldowns.items()
            },
        })

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (exact round trip).

        Forward tolerant: unknown keys are ignored, and a payload without
        ``schema_version`` is read as the pre-versioning v0 form.
        """
        from ..core.wire import decode_float_map

        result = cls(
            payload["name"],
            payload["estimator_names"],
            payload["spec_names"],
        )
        result.rounds = [int(r) for r in payload["rounds"]]
        result.truths = [
            [decode_float_map(snapshot) for snapshot in trial]
            for trial in payload["truths"]
        ]
        result.estimates = {
            estimator: [
                [decode_float_map(snapshot) for snapshot in trial]
                for trial in trials
            ]
            for estimator, trials in payload["estimates"].items()
        }
        result.queries = {
            estimator: [[int(q) for q in trial] for trial in trials]
            for estimator, trials in payload["queries"].items()
        }
        result.drilldowns = {
            estimator: [[int(d) for d in trial] for trial in trials]
            for estimator, trials in payload["drilldowns"].items()
        }
        return result

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def num_trials(self) -> int:
        return len(self.truths)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def rel_errors(self, estimator: str, spec: str) -> np.ndarray:
        """(trials, rounds) matrix of per-round relative errors."""
        if estimator not in self.estimates:
            raise ExperimentError(f"unknown estimator {estimator!r}")
        matrix = np.full((self.num_trials, self.num_rounds), np.nan)
        for trial in range(self.num_trials):
            for position in range(len(self.truths[trial])):
                truth = self.truths[trial][position].get(spec, math.nan)
                estimate = self.estimates[estimator][trial][position].get(
                    spec, math.nan
                )
                matrix[trial, position] = relative_error(estimate, truth)
        return matrix

    def mean_rel_error_series(self, estimator: str, spec: str) -> list[float]:
        """Per-round relative error averaged over trials (paper's y-axis)."""
        matrix = self.rel_errors(estimator, spec)
        with np.errstate(invalid="ignore"):
            return [float(v) for v in np.nanmean(matrix, axis=0)]

    def final_rel_error(self, estimator: str, spec: str) -> float:
        """Trial-mean relative error at the last round."""
        return self.mean_rel_error_series(estimator, spec)[-1]

    def tail_rel_error(self, estimator: str, spec: str, tail: int = 5) -> float:
        """Trial-and-round mean over the last ``tail`` rounds (stabler)."""
        series = self.mean_rel_error_series(estimator, spec)
        window = [v for v in series[-tail:] if not math.isnan(v)]
        return sum(window) / len(window) if window else math.nan

    def estimate_series(self, estimator: str, spec: str) -> list[float]:
        """Per-round estimates averaged over trials (raw tracking plots)."""
        values = []
        for position in range(self.num_rounds):
            draws = [
                self.estimates[estimator][trial][position].get(spec, math.nan)
                for trial in range(self.num_trials)
            ]
            finite = [v for v in draws if not math.isnan(v)]
            values.append(sum(finite) / len(finite) if finite else math.nan)
        return values

    def estimate_spread(self, estimator: str, spec: str) -> list[float]:
        """Per-round standard deviation of estimates across trials."""
        spreads = []
        for position in range(self.num_rounds):
            draws = [
                self.estimates[estimator][trial][position].get(spec, math.nan)
                for trial in range(self.num_trials)
            ]
            finite = [v for v in draws if not math.isnan(v)]
            if len(finite) >= 2:
                spreads.append(float(np.std(finite, ddof=1)))
            else:
                spreads.append(math.nan)
        return spreads

    def truth_series(self, spec: str) -> list[float]:
        """Per-round exact values (trial 0; identical when envs share seeds)."""
        return [
            self.truths[0][position].get(spec, math.nan)
            for position in range(self.num_rounds)
        ]

    def mean_queries_per_round(self, estimator: str) -> float:
        flat = [q for trial in self.queries[estimator] for q in trial]
        return sum(flat) / len(flat) if flat else math.nan

    def cumulative_drilldowns(self, estimator: str) -> list[float]:
        """Trial-mean cumulative drill-down count per round (Figure 19)."""
        matrix = np.asarray(self.drilldowns[estimator], dtype=float)
        return [float(v) for v in np.cumsum(matrix, axis=1).mean(axis=0)]

    def cumulative_queries(self, estimator: str) -> list[float]:
        matrix = np.asarray(self.queries[estimator], dtype=float)
        return [float(v) for v in np.cumsum(matrix, axis=1).mean(axis=0)]
