"""Minimal ASCII line charts for terminal reporting.

The benchmark harness and CLI print each figure's series as both a table
and a chart; no plotting dependency is available offline, and a text chart
in the captured benchmark output is exactly what EXPERIMENTS.md references.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Glyphs assigned to series, in declaration order.
_MARKERS = "*o+x#@%&"


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if v is not None and math.isfinite(v)]


def render_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 68,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
    log_y: bool = False,
) -> str:
    """Render named series (shared x = index) as an ASCII chart."""
    all_values = [v for values in series.values() for v in _finite(values)]
    if not all_values:
        return "(no finite data to chart)"
    positive = [v for v in all_values if v > 0]
    use_log = log_y and positive
    if use_log:
        lo = math.log10(min(positive))
        hi = math.log10(max(positive))
    else:
        lo = min(all_values)
        hi = max(all_values)
    if hi == lo:
        hi = lo + 1.0
    length = max(len(values) for values in series.values())
    grid = [[" "] * width for _ in range(height)]

    def to_row(value: float) -> int | None:
        if not math.isfinite(value):
            return None
        if use_log:
            if value <= 0:
                return None
            value = math.log10(value)
        fraction = (value - lo) / (hi - lo)
        return height - 1 - round(fraction * (height - 1))

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for position, value in enumerate(values):
            row = to_row(value)
            if row is None:
                continue
            column = (
                round(position * (width - 1) / (length - 1))
                if length > 1
                else 0
            )
            grid[row][column] = marker
    top = f"{(10 ** hi if use_log else hi):.4g}"
    bottom = f"{(10 ** lo if use_log else lo):.4g}"
    lines = []
    if y_label:
        lines.append(y_label + (" (log scale)" if use_log else ""))
    for row_index, row in enumerate(grid):
        prefix = top if row_index == 0 else (
            bottom if row_index == height - 1 else ""
        )
        lines.append(f"{prefix:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table with right-aligned numeric formatting."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if math.isnan(cell):
                return "nan"
            if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
                return f"{cell:.3e}"
            return f"{cell:.4f}"
        return str(cell)

    table = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in table:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
