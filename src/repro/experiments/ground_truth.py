"""Exact ground truth, maintained incrementally (simulator-side only).

The tracker subscribes to the database's mutation stream and keeps running
totals for every linear base spec, so even million-tuple sweeps pay O(1)
per mutation instead of O(n) scans per round.  Derived specs (ratios,
size changes, running averages) are computed from per-round snapshots.

Estimators never see any of this; it exists to score them.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.aggregates import (
    AggregateSpec,
    AnySpec,
    RatioSpec,
    RunningAverageSpec,
    SizeChangeSpec,
    base_specs_of,
)
from ..hiddendb.database import HiddenDatabase
from ..hiddendb.tuples import HiddenTuple


class GroundTruthTracker:
    """Running exact values of every tracked aggregate, per round."""

    def __init__(self, db: HiddenDatabase, specs: Sequence[AnySpec]):
        self.db = db
        self.specs = list(specs)
        self.base_specs = base_specs_of(self.specs)
        self._totals: dict[str, float] = {}
        for spec in self.base_specs:
            self._totals[spec.name] = spec.ground_truth(db)
        #: Round index -> {spec name: exact value} snapshots.
        self._snapshots: dict[int, dict[str, float]] = {}
        db.store.subscribe(self._on_mutation)

    # ------------------------------------------------------------------
    def _on_mutation(self, event: str, t: HiddenTuple) -> None:
        for spec in self.base_specs:
            value = spec.full_tuple_value(t)
            if value:
                if event == "insert":
                    self._totals[spec.name] += value
                else:
                    self._totals[spec.name] -= value

    def current(self, spec_name: str) -> float:
        """Live running total of a base spec."""
        return self._totals[spec_name]

    # ------------------------------------------------------------------
    def record_round(self, round_index: int) -> dict[str, float]:
        """Snapshot every spec's exact value for the given round."""
        snapshot: dict[str, float] = {}
        for spec in self.base_specs:
            snapshot[spec.name] = self._totals[spec.name]
        for spec in self.specs:
            if isinstance(spec, AggregateSpec):
                continue
            if isinstance(spec, RatioSpec):
                denominator = snapshot.get(spec.denominator.name, 0.0)
                numerator = snapshot.get(spec.numerator.name, math.nan)
                snapshot[spec.name] = (
                    numerator / denominator if denominator else math.nan
                )
            elif isinstance(spec, SizeChangeSpec):
                previous = self._snapshots.get(round_index - 1)
                if previous is None:
                    snapshot[spec.name] = math.nan
                else:
                    snapshot[spec.name] = (
                        snapshot[spec.base.name] - previous[spec.base.name]
                    )
            elif isinstance(spec, RunningAverageSpec):
                window = []
                for past in range(round_index - spec.window + 1, round_index):
                    past_snapshot = self._snapshots.get(past)
                    if past_snapshot is not None:
                        window.append(past_snapshot[spec.base.name])
                window.append(snapshot[spec.base.name])
                snapshot[spec.name] = sum(window) / len(window)
        self._snapshots[round_index] = snapshot
        return snapshot

    def truth(self, round_index: int, spec_name: str) -> float:
        """Recorded exact value for a spec in a given round."""
        return self._snapshots[round_index][spec_name]

    def verify_against_scan(self) -> None:
        """Cross-check running totals against a full scan (tests only)."""
        for spec in self.base_specs:
            scanned = spec.ground_truth(self.db)
            drift = abs(self._totals[spec.name] - scanned)
            tolerance = 1e-6 * max(1.0, abs(scanned))
            if drift > tolerance:
                raise AssertionError(
                    f"ground-truth drift for {spec.name!r}: "
                    f"tracked={self._totals[spec.name]!r} scanned={scanned!r}"
                )
