"""Experiment harness: runner, ground truth, metrics, figures, CLI."""

from .ascii_chart import render_chart, render_table
from .figures import FIGURES, FigureResult
from .ground_truth import GroundTruthTracker
from .metrics import ExperimentResult, relative_error
from .runner import EstimatorFactory, Experiment, default_estimators

__all__ = [
    "ExperimentResult",
    "EstimatorFactory",
    "Experiment",
    "FIGURES",
    "FigureResult",
    "GroundTruthTracker",
    "default_estimators",
    "relative_error",
    "render_chart",
    "render_table",
]
