"""The experiment runner: trials, rounds, estimators, ground truth.

An :class:`Experiment` wires together an environment factory (database +
update schedule, built fresh per trial), an engine configuration, a set of
estimator factories, the tracked aggregates, and the round/trial counts.
Execution routes through the :class:`repro.api.Engine` facade — one engine
per trial environment, one :class:`~repro.api.engine.EstimationTask` per
estimator — and is bit-identical to the pre-facade runner (see
``tests/test_api_parity.py``).  Two update models are supported:

* round mode (default): all of a round's mutations apply at the boundary;
* intra-round mode (§5.2 / Figure 4): each estimator gets its *own* copy of
  the environment and the round's mutations are interleaved with its query
  traffic via :class:`~repro.data.schedules.IntraRoundDriver`.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..api.config import EngineConfig
from ..api.engine import Engine, EstimationTask
from ..core.aggregates import AnySpec, base_specs_of
from ..core.estimators.registry import EstimatorFactory as RegistryFactory
from ..core.estimators.registry import resolve_estimator
from ..data.schedules import IntraRoundDriver, UpdateSchedule, apply_round
from ..errors import EstimationError, ExperimentError
from ..hiddendb.database import HiddenDatabase
from ..hiddendb.schema import Schema
from ..obs import OBS
from .ground_truth import GroundTruthTracker
from .metrics import ExperimentResult

#: Environment per trial: the database plus its update schedule.
Env = tuple[HiddenDatabase, UpdateSchedule]

#: Builds a fresh environment for a trial seed.
EnvFactory = Callable[[int], Env]

#: Builds the tracked aggregates once the schema is known.
SpecsFactory = Callable[[Schema], Sequence[AnySpec]]


class EstimatorFactory:
    """Named constructor for one estimator configuration.

    ``cls`` is a registry name (``"RESTART"`` / ``"REISSUE"`` / ``"RS"`` /
    anything registered via :func:`repro.api.register_estimator`) or a
    factory callable; extra kwargs are forwarded to it.
    """

    def __init__(self, name: str, cls: type | RegistryFactory | str, **kwargs):
        self.name = name
        if isinstance(cls, str):
            try:
                cls = resolve_estimator(cls)
            except EstimationError:
                raise ExperimentError(f"unknown estimator {cls!r}") from None
        self.cls = cls
        self.kwargs = dict(kwargs)

    def task(
        self, specs: Sequence[AnySpec], seed: int, budget: int | None = None
    ) -> EstimationTask:
        """The engine task this factory describes."""
        return EstimationTask(
            self.name,
            specs,
            estimator=self.cls,
            seed=seed,
            budget=budget,
            options=self.kwargs,
        )

    def build(self, interface, specs: Sequence[AnySpec], budget: int,
              seed: int):
        """Construct the estimator directly (pre-facade entry point)."""
        return self.cls(
            interface, specs, budget_per_round=budget, seed=seed, **self.kwargs
        )


def default_estimators() -> list[EstimatorFactory]:
    """The paper's three algorithms with default settings."""
    return [
        EstimatorFactory("RESTART", "RESTART"),
        EstimatorFactory("REISSUE", "REISSUE"),
        EstimatorFactory("RS", "RS"),
    ]


class Experiment:
    """A repeatable multi-round, multi-trial estimator comparison.

    Either pass the legacy knobs (``k``, ``budget_per_round``,
    ``backend``, ``base_seed``) or hand in an
    :class:`~repro.api.EngineConfig` via ``config`` — the config wins
    when both are given, except that an explicitly passed ``base_seed``
    takes precedence over ``config.seed`` for trial seeding.  Estimates
    are bit-identical through either spelling.
    """

    def __init__(
        self,
        name: str,
        env_factory: EnvFactory,
        specs_factory: SpecsFactory,
        k: int = 100,
        budget_per_round: int = 300,
        rounds: int = 1,
        trials: int = 1,
        estimators: Sequence[EstimatorFactory] | None = None,
        base_seed: int | None = None,
        intra_round: bool = False,
        backend: str | None = None,
        config: EngineConfig | None = None,
    ):
        if rounds < 1 or trials < 1:
            raise ExperimentError("rounds and trials must be positive")
        self.name = name
        self.env_factory = env_factory
        self.specs_factory = specs_factory
        if config is None:
            config = EngineConfig(
                backend=backend,
                k=k,
                budget_per_round=budget_per_round,
                seed=base_seed if base_seed is not None else 0,
            )
        self.config = config
        self.rounds = rounds
        self.trials = trials
        self.estimators = (
            list(estimators) if estimators is not None else default_estimators()
        )
        # Trial seeding: an explicit base_seed wins; otherwise the config's
        # seed governs (so `config=EngineConfig(seed=...)` is honoured).
        self.base_seed = base_seed if base_seed is not None else config.seed
        self.intra_round = intra_round

    # Legacy attribute views (pre-config call sites read these).
    @property
    def k(self) -> int:
        return self.config.k

    @property
    def budget_per_round(self) -> int:
        return self.config.budget_per_round

    @property
    def backend(self) -> str | None:
        return self.config.backend

    def _build_env(self, seed: int) -> Env:
        with self.config.apply(), OBS.span("experiment.env_build"):
            return self.env_factory(seed)

    def _engine(self, db: HiddenDatabase) -> Engine:
        return Engine(self.config, db=db)

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute all trials and return the collected result."""
        result: ExperimentResult | None = None
        for trial in range(self.trials):
            seed = self.base_seed + 1000 * trial
            with OBS.span("experiment.trial"):
                if self.intra_round:
                    trial_result = self._run_trial_intra(seed, trial, result)
                else:
                    trial_result = self._run_trial_round(seed, trial, result)
            result = trial_result
        assert result is not None
        return result

    # ------------------------------------------------------------------
    def _make_result(self, specs: Sequence[AnySpec]) -> ExperimentResult:
        spec_names = [spec.name for spec in specs]
        spec_names += [
            base.name
            for base in base_specs_of(specs)
            if base.name not in spec_names
        ]
        return ExperimentResult(
            self.name, [factory.name for factory in self.estimators], spec_names
        )

    def _submit_all(
        self, engine: Engine, specs: Sequence[AnySpec], seed: int
    ) -> None:
        """One engine task per estimator factory, legacy seed schedule."""
        for index, factory in enumerate(self.estimators):
            engine.submit(factory.task(specs, seed + 17 + index))

    def _run_trial_round(
        self, seed: int, trial: int, result: ExperimentResult | None
    ) -> ExperimentResult:
        db, schedule = self._build_env(seed)
        specs = list(self.specs_factory(db.schema))
        if result is None:
            result = self._make_result(specs)
        engine = self._engine(db)
        tracker = GroundTruthTracker(db, specs)
        self._submit_all(engine, specs, seed)
        schedule_rng = random.Random(seed + 5)
        result.start_trial()
        for position in range(self.rounds):
            if position > 0:
                engine.apply_updates(
                    lambda db: apply_round(db, schedule, schedule_rng)
                )
                engine.advance_round()
            round_index = engine.current_round
            result.record_truth(round_index, tracker.record_round(round_index))
            for name, report in engine.run_round().items():
                result.record_report(
                    name,
                    report.estimates,
                    report.queries_used,
                    report.drilldowns_updated + report.drilldowns_new,
                )
        return result

    def _run_trial_intra(
        self, seed: int, trial: int, result: ExperimentResult | None
    ) -> ExperimentResult:
        """Intra-round mode: independent environment per estimator."""
        snapshots: dict[str, dict[int, dict[str, float]]] = {}
        reports: dict[str, list] = {}
        specs_for_result: Sequence[AnySpec] | None = None
        round_ids: list[int] = []
        for index, factory in enumerate(self.estimators):
            db, schedule = self._build_env(seed)
            specs = list(self.specs_factory(db.schema))
            specs_for_result = specs
            engine = self._engine(db)
            tracker = GroundTruthTracker(db, specs)
            handle = engine.submit(factory.task(specs, seed + 17 + index))
            driver = IntraRoundDriver(
                db, schedule, self.budget_per_round, random.Random(seed + 5)
            )
            handle.estimator.on_query = driver.on_query
            snapshots[factory.name] = {}
            reports[factory.name] = []
            round_ids = []
            for position in range(self.rounds):
                if position > 0:
                    engine.advance_round()
                    driver.start_round()
                report = engine.run_round()[factory.name]
                if position > 0:
                    driver.finish_round()
                round_index = engine.current_round
                round_ids.append(round_index)
                snapshots[factory.name][round_index] = tracker.record_round(
                    round_index
                )
                reports[factory.name].append(report)
        assert specs_for_result is not None
        if result is None:
            result = self._make_result(specs_for_result)
        result.start_trial()
        # Truth differs per estimator in intra-round mode only through query
        # interleaving; environments share seeds so the planned mutations are
        # identical and the first estimator's truth serves as the reference.
        reference = self.estimators[0].name
        for round_index in round_ids:
            result.record_truth(round_index, snapshots[reference][round_index])
        for factory in self.estimators:
            for report in reports[factory.name]:
                result.record_report(
                    factory.name,
                    report.estimates,
                    report.queries_used,
                    report.drilldowns_updated + report.drilldowns_new,
                )
        return result
