"""The experiment runner: trials, rounds, estimators, ground truth.

An :class:`Experiment` wires together an environment factory (database +
update schedule, built fresh per trial), an interface configuration (k),
a set of estimator factories, the tracked aggregates, and the round/trial
counts.  Two update models are supported:

* round mode (default): all of a round's mutations apply at the boundary;
* intra-round mode (§5.2 / Figure 4): each estimator gets its *own* copy of
  the environment and the round's mutations are interleaved with its query
  traffic via :class:`~repro.data.schedules.IntraRoundDriver`.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..core.aggregates import AnySpec, base_specs_of
from ..core.estimators import ESTIMATOR_CLASSES, EstimatorBase
from ..data.schedules import IntraRoundDriver, UpdateSchedule, apply_round
from ..errors import ExperimentError
from ..hiddendb.backends import using_backend
from ..hiddendb.database import HiddenDatabase
from ..hiddendb.interface import TopKInterface
from ..hiddendb.schema import Schema
from .ground_truth import GroundTruthTracker
from .metrics import ExperimentResult

#: Environment per trial: the database plus its update schedule.
Env = tuple[HiddenDatabase, UpdateSchedule]

#: Builds a fresh environment for a trial seed.
EnvFactory = Callable[[int], Env]

#: Builds the tracked aggregates once the schema is known.
SpecsFactory = Callable[[Schema], Sequence[AnySpec]]


class EstimatorFactory:
    """Named constructor for one estimator configuration."""

    def __init__(self, name: str, cls: type[EstimatorBase] | str, **kwargs):
        self.name = name
        if isinstance(cls, str):
            try:
                cls = ESTIMATOR_CLASSES[cls]
            except KeyError:
                raise ExperimentError(f"unknown estimator {cls!r}") from None
        self.cls = cls
        self.kwargs = dict(kwargs)

    def build(
        self,
        interface: TopKInterface,
        specs: Sequence[AnySpec],
        budget: int,
        seed: int,
    ) -> EstimatorBase:
        return self.cls(
            interface, specs, budget_per_round=budget, seed=seed, **self.kwargs
        )


def default_estimators() -> list[EstimatorFactory]:
    """The paper's three algorithms with default settings."""
    return [
        EstimatorFactory("RESTART", "RESTART"),
        EstimatorFactory("REISSUE", "REISSUE"),
        EstimatorFactory("RS", "RS"),
    ]


class Experiment:
    """A repeatable multi-round, multi-trial estimator comparison."""

    def __init__(
        self,
        name: str,
        env_factory: EnvFactory,
        specs_factory: SpecsFactory,
        k: int,
        budget_per_round: int,
        rounds: int,
        trials: int = 1,
        estimators: Sequence[EstimatorFactory] | None = None,
        base_seed: int = 0,
        intra_round: bool = False,
        backend: str | None = None,
    ):
        if rounds < 1 or trials < 1:
            raise ExperimentError("rounds and trials must be positive")
        self.name = name
        self.env_factory = env_factory
        self.specs_factory = specs_factory
        self.k = k
        self.budget_per_round = budget_per_round
        self.rounds = rounds
        self.trials = trials
        self.estimators = (
            list(estimators) if estimators is not None else default_estimators()
        )
        self.base_seed = base_seed
        self.intra_round = intra_round
        # Storage backend every trial's database is built with (None keeps
        # whatever default is active when the environment factory runs).
        self.backend = backend

    def _build_env(self, seed: int) -> Env:
        with using_backend(self.backend):
            return self.env_factory(seed)

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute all trials and return the collected result."""
        result: ExperimentResult | None = None
        for trial in range(self.trials):
            seed = self.base_seed + 1000 * trial
            if self.intra_round:
                trial_result = self._run_trial_intra(seed, trial, result)
            else:
                trial_result = self._run_trial_round(seed, trial, result)
            result = trial_result
        assert result is not None
        return result

    # ------------------------------------------------------------------
    def _make_result(self, specs: Sequence[AnySpec]) -> ExperimentResult:
        spec_names = [spec.name for spec in specs]
        spec_names += [
            base.name
            for base in base_specs_of(specs)
            if base.name not in spec_names
        ]
        return ExperimentResult(
            self.name, [factory.name for factory in self.estimators], spec_names
        )

    def _run_trial_round(
        self, seed: int, trial: int, result: ExperimentResult | None
    ) -> ExperimentResult:
        db, schedule = self._build_env(seed)
        specs = list(self.specs_factory(db.schema))
        if result is None:
            result = self._make_result(specs)
        interface = TopKInterface(db, self.k)
        tracker = GroundTruthTracker(db, specs)
        estimators = {
            factory.name: factory.build(
                interface, specs, self.budget_per_round, seed + 17 + index
            )
            for index, factory in enumerate(self.estimators)
        }
        schedule_rng = random.Random(seed + 5)
        result.start_trial()
        for position in range(self.rounds):
            if position > 0:
                apply_round(db, schedule, schedule_rng)
                db.advance_round()
            round_index = db.current_round
            result.record_truth(round_index, tracker.record_round(round_index))
            for name, estimator in estimators.items():
                report = estimator.run_round()
                result.record_report(
                    name,
                    report.estimates,
                    report.queries_used,
                    report.drilldowns_updated + report.drilldowns_new,
                )
        return result

    def _run_trial_intra(
        self, seed: int, trial: int, result: ExperimentResult | None
    ) -> ExperimentResult:
        """Intra-round mode: independent environment per estimator."""
        snapshots: dict[str, dict[int, dict[str, float]]] = {}
        reports: dict[str, list] = {}
        specs_for_result: Sequence[AnySpec] | None = None
        round_ids: list[int] = []
        for index, factory in enumerate(self.estimators):
            db, schedule = self._build_env(seed)
            specs = list(self.specs_factory(db.schema))
            specs_for_result = specs
            interface = TopKInterface(db, self.k)
            tracker = GroundTruthTracker(db, specs)
            estimator = factory.build(
                interface, specs, self.budget_per_round, seed + 17 + index
            )
            driver = IntraRoundDriver(
                db, schedule, self.budget_per_round, random.Random(seed + 5)
            )
            estimator.on_query = driver.on_query
            snapshots[factory.name] = {}
            reports[factory.name] = []
            round_ids = []
            for position in range(self.rounds):
                if position > 0:
                    db.advance_round()
                    driver.start_round()
                report = estimator.run_round()
                if position > 0:
                    driver.finish_round()
                round_index = db.current_round
                round_ids.append(round_index)
                snapshots[factory.name][round_index] = tracker.record_round(
                    round_index
                )
                reports[factory.name].append(report)
        assert specs_for_result is not None
        if result is None:
            result = self._make_result(specs_for_result)
        result.start_trial()
        # Truth differs per estimator in intra-round mode only through query
        # interleaving; environments share seeds so the planned mutations are
        # identical and the first estimator's truth serves as the reference.
        reference = self.estimators[0].name
        for round_index in round_ids:
            result.record_truth(round_index, snapshots[reference][round_index])
        for factory in self.estimators:
            for report in reports[factory.name]:
                result.record_report(
                    factory.name,
                    report.estimates,
                    report.queries_used,
                    report.drilldowns_updated + report.drilldowns_new,
                )
        return result
