"""Figures 8–13: parameter sweeps (k, G, churn, m, |D1|, selection SUMs).

Each sweep reports the trial-mean relative error over the final rounds of
a tracking run, per estimator, per sweep point — the paper's
"error after N rounds" y-axis.
"""

from __future__ import annotations

from ...core.aggregates import count_all, sum_measure
from ...data.schedules import SnapshotPoolSchedule
from ...data.synthetic import skewed_source
from ...hiddendb.database import HiddenDatabase
from .common import (
    DEFAULT_SCALE,
    DEFAULT_TRIALS,
    FigureResult,
    autos_env_factory,
    run_three_way,
    scaled_k,
)


def _count_specs(schema):
    return [count_all()]


def _sweep_figure(
    figure_id: str,
    title: str,
    x_label: str,
    xs,
    results,
    spec: str = "count",
    notes: str = "",
    tail: int = 5,
    log_y: bool = False,
) -> FigureResult:
    estimators = results[0].estimator_names
    series = {
        estimator: [r.tail_rel_error(estimator, spec, tail=tail) for r in results]
        for estimator in estimators
    }
    return FigureResult(
        figure_id, title, x_label, "relative error", xs, series,
        notes=notes, log_y=log_y,
    )


def run_fig08(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 30,
    budget: int = 500,
    seed: int = 0,
    k_values=(200, 400, 600, 800, 1000),
) -> FigureResult:
    """Figure 8: effect of the interface page size k."""
    results = [
        run_three_way(
            f"fig08_k{k}",
            autos_env_factory(scale=scale),
            _count_specs,
            k=scaled_k(scale, paper_k=k),
            budget=budget,
            rounds=rounds,
            trials=trials,
            seed=seed,
        )
        for k in k_values
    ]
    return _sweep_figure(
        "fig08",
        "Error after tracking vs interface page size k",
        "k",
        list(k_values),
        results,
        notes="Bigger k = shallower drill-downs = cheaper rounds = lower "
        "error, for every algorithm.",
    )


def run_fig09(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 30,
    seed: int = 0,
    budgets=(100, 200, 300, 400, 500, 600),
) -> FigureResult:
    """Figure 9: effect of the per-round query budget G."""
    results = [
        run_three_way(
            f"fig09_g{budget}",
            autos_env_factory(scale=scale),
            _count_specs,
            k=scaled_k(scale),
            budget=budget,
            rounds=rounds,
            trials=trials,
            seed=seed,
        )
        for budget in budgets
    ]
    return _sweep_figure(
        "fig09",
        "Error after tracking vs per-round query budget G",
        "G",
        list(budgets),
        results,
        notes="RS stays best throughout; its edge over REISSUE narrows as "
        "G grows (updates then take a small budget share anyway).",
    )


def run_fig10(
    trials: int = DEFAULT_TRIALS,
    rounds: int = 60,
    budget: int = 100,
    seed: int = 0,
    net_inserts=(-30, -15, 0, 15, 30),
    k: int = 50,
) -> FigureResult:
    """Figure 10: net insertions/deletions per round on a 5,000-tuple DB."""
    results = []
    for net in net_inserts:
        inserts = max(net, 0)
        deletes = max(-net, 0)

        def factory(seed_: int, inserts=inserts, deletes=deletes):
            # A large snapshot leaves a deep pool for 60 rounds of inserts.
            from ...data.autos import autos_snapshot

            schema, payloads = autos_snapshot(10_000, seed_)
            db = HiddenDatabase(schema)
            db.insert_many(payloads[:5_000])
            schedule = SnapshotPoolSchedule(
                payloads[5_000:],
                inserts_per_round=inserts,
                deletes_per_round=deletes,
            )
            return db, schedule

        results.append(
            run_three_way(
                f"fig10_net{net}",
                factory,
                _count_specs,
                k=k,
                budget=budget,
                rounds=rounds,
                trials=trials,
                seed=seed,
            )
        )
    return _sweep_figure(
        "fig10",
        "Error vs per-round net insertion count (5k-tuple database)",
        "net inserts/round",
        list(net_inserts),
        results,
        notes="REISSUE suffers most on the deletion-heavy side (Theorem "
        "3.2's worst case); RS stays ahead of RESTART everywhere.",
    )


def run_fig11(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 30,
    budget: int = 500,
    seed: int = 0,
    attribute_counts=(34, 36, 38),
) -> FigureResult:
    """Figure 11: effect of the attribute count m (expected: flat)."""
    results = [
        run_three_way(
            f"fig11_m{m}",
            autos_env_factory(scale=scale, num_attributes=m),
            _count_specs,
            k=scaled_k(scale),
            budget=budget,
            rounds=rounds,
            trials=trials,
            seed=seed,
        )
        for m in attribute_counts
    ]
    return _sweep_figure(
        "fig11",
        "Error vs number of attributes m",
        "m",
        list(attribute_counts),
        results,
        notes="Drill-downs rarely reach the lowest levels, so extra "
        "attributes change nothing (matches the paper).",
    )


def run_fig12(
    trials: int = DEFAULT_TRIALS,
    rounds: int = 10,
    budget: int = 500,
    seed: int = 0,
    sizes=(10_000, 100_000, 1_000_000),
    k: int = 100,
) -> FigureResult:
    """Figure 12: scalability in the starting database size (m=50).

    The paper sweeps to 10^7; pure-Python tuple storage caps the default at
    10^6 (pass a larger ``sizes`` with ~3 GB of RAM to go further).  The
    trend is established over three decades: RESTART's error grows with
    the database, ours stays flat.
    """
    domain_sizes = [2 + (i % 7) for i in range(50)]
    results = []
    for n in sizes:
        def factory(seed_: int, n=n):
            source = skewed_source(domain_sizes, exponent=0.4, seed=seed_)
            db = HiddenDatabase(source.schema)
            # Columnar load: the batch goes straight to the vectorized
            # data plane without materializing per-tuple payloads.
            db.insert_many(source.batch_columns(n))
            from ...data.schedules import FreshTupleSchedule

            schedule = FreshTupleSchedule(
                source,
                inserts_per_round=max(1, n // 500),
                delete_fraction=0.001,
            )
            return db, schedule

        results.append(
            run_three_way(
                f"fig12_n{n}",
                factory,
                _count_specs,
                k=k,
                budget=budget,
                rounds=rounds,
                trials=trials,
                seed=seed,
            )
        )
    return _sweep_figure(
        "fig12",
        "Error vs starting database size (m=50)",
        "|D1|",
        list(sizes),
        results,
        tail=3,
        notes="RESTART worsens with scale; REISSUE/RS stay flat and the "
        "gap widens (paper Fig. 12).",
    )


def run_fig13(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 40,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Figure 13: SUM(price) with 0–3 conjunctive selection predicates.

    Predicates are pushed into the query tree (§3.3), so more selective
    aggregates drill a *smaller* subtree and get lower errors.
    """
    condition_sets = [
        {},
        {"certified": "certified_0"},
        {"certified": "certified_0", "one_owner": "one_owner_0"},
        {
            "certified": "certified_0",
            "one_owner": "one_owner_0",
            "warranty": "warranty_0",
        },
    ]
    results = []
    for conditions in condition_sets:
        def specs_factory(schema, conditions=conditions):
            return [
                sum_measure(schema, "price", where=conditions or None,
                            name="sum_price")
            ]

        results.append(
            run_three_way(
                f"fig13_c{len(conditions)}",
                autos_env_factory(scale=scale),
                specs_factory,
                k=scaled_k(scale),
                budget=budget,
                rounds=rounds,
                trials=trials,
                seed=seed,
            )
        )
    return _sweep_figure(
        "fig13",
        "SUM(price) error vs number of conjunctive selection predicates",
        "#predicates",
        [0, 1, 2, 3],
        results,
        spec="sum_price",
        notes="More selective aggregates restrict the drill-down subtree "
        "and get more accurate (paper Fig. 13).",
    )
