"""Figures 14–17: trans-round aggregates.

* Figure 14 — running average of COUNT over the last 2/3/4 rounds.
* Figure 15 — size change |Di|-|Di-1| under small churn, relative error
  (log scale): RESTART is catastrophic because differencing two noisy
  independent estimates swamps the tiny true change.
* Figure 16 — the same runs, raw size-change estimates vs truth.
* Figure 17 — size change under big churn: everyone converges, RESTART
  still trails.
"""

from __future__ import annotations

from ...core.aggregates import count_all, running_average, size_change
from .common import (
    DEFAULT_SCALE,
    DEFAULT_TRIALS,
    FigureResult,
    autos_env_factory,
    error_series_figure,
    run_three_way,
    scaled_k,
)


def run_fig14(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 30,
    budget: int = 500,
    seed: int = 0,
    windows=(2, 3, 4),
) -> FigureResult:
    """Figure 14: running average of COUNT over the last w rounds."""

    def specs_factory(schema):
        count = count_all()
        return [count] + [running_average(w, base=count) for w in windows]

    result = run_three_way(
        "fig14",
        autos_env_factory(scale=scale),
        specs_factory,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        seed=seed,
    )
    series = {
        estimator: [
            result.tail_rel_error(estimator, f"running_avg_{w}")
            for w in windows
        ]
        for estimator in result.estimator_names
    }
    return FigureResult(
        "fig14",
        "Running-average COUNT error vs window size",
        x_label="window (rounds)",
        y_label="relative error",
        xs=list(windows),
        series=series,
        notes="RS best in all cases; REISSUE and RS far ahead of RESTART "
        "(paper Fig. 14).",
    )


def _size_change_specs(schema):
    count = count_all()
    return [count, size_change(count)]


def run_fig15(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 20,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Figure 15: |Di|-|Di-1| under small churn, relative error (log y)."""
    # A deep held-out pool (total >> initial) keeps +3000/round sustainable
    # for the whole run; otherwise the pool dries up, the true change hits
    # zero, and relative error is undefined.
    factory = autos_env_factory(
        scale=scale, inserts_per_round=3000, delete_fraction=0.005,
        total=300_000,
    )
    result = run_three_way(
        "fig15", factory, _size_change_specs,
        k=scaled_k(scale), budget=budget, rounds=rounds, trials=trials,
        seed=seed,
    )
    return error_series_figure(
        "fig15",
        "Size-change tracking error under small churn (log scale)",
        result,
        "size_change",
        notes="RESTART differences two noisy independent estimates of a "
        "tiny quantity — errors orders of magnitude above REISSUE/RS.",
        log_y=True,
    )


def run_fig16(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 20,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Figure 16: raw size-change estimates vs the exact change."""
    factory = autos_env_factory(
        scale=scale, inserts_per_round=3000, delete_fraction=0.005,
        total=300_000,
    )
    result = run_three_way(
        "fig16", factory, _size_change_specs,
        k=scaled_k(scale), budget=budget, rounds=rounds, trials=trials,
        seed=seed,
    )
    series = {"TRUTH": result.truth_series("size_change")}
    for estimator in result.estimator_names:
        series[estimator] = result.estimate_series(estimator, "size_change")
    return FigureResult(
        "fig16",
        "Raw size-change estimates vs exact change (small churn)",
        x_label="round",
        y_label="|Di| - |Di-1|",
        xs=result.rounds,
        series=series,
        notes="REISSUE/RS hug the truth; RESTART swings wildly "
        "(paper Fig. 16).",
    )


def run_fig17(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 10,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Figure 17: size change under big churn (+10k/-5% per round)."""
    factory = autos_env_factory(
        scale=scale,
        inserts_per_round=10_000,
        delete_fraction=0.05,
        initial=100_000,
        total=188_917,
    )
    result = run_three_way(
        "fig17", factory, _size_change_specs,
        k=scaled_k(scale), budget=budget, rounds=rounds, trials=trials,
        seed=seed,
    )
    return error_series_figure(
        "fig17",
        "Size-change tracking error under big churn",
        result,
        "size_change",
        notes="REISSUE and RS converge to the same behaviour under heavy "
        "change (paper §4.2); both beat RESTART.",
        log_y=True,
    )
