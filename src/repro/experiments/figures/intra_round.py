"""Figure 4: the constant-update model (§5.2).

The paper's worst case: the algorithm takes the whole round to run while a
tuple is inserted every 12 seconds and one is deleted every 21 seconds —
i.e. the round's churn lands *between the algorithm's own queries*.  The
figure compares REISSUE/RS under the clean round model against the same
algorithms with intra-round updates; the series should nearly coincide.
"""

from __future__ import annotations

from ...core.aggregates import count_all
from ..runner import EstimatorFactory
from .common import (
    DEFAULT_SCALE,
    DEFAULT_TRIALS,
    FigureResult,
    autos_env_factory,
    run_three_way,
    scaled_k,
)


def run_fig04(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 30,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Figure 4: round-boundary vs intra-round update application."""
    estimators = [
        EstimatorFactory("REISSUE", "REISSUE"),
        EstimatorFactory("RS", "RS"),
    ]

    def specs_factory(schema):
        return [count_all()]

    round_mode = run_three_way(
        "fig04_round",
        autos_env_factory(scale=scale),
        specs_factory,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        estimators=estimators,
        seed=seed,
    )
    intra_mode = run_three_way(
        "fig04_intra",
        autos_env_factory(scale=scale),
        specs_factory,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        estimators=estimators,
        seed=seed,
        intra_round=True,
    )
    series = {}
    for estimator in ("REISSUE", "RS"):
        series[estimator] = round_mode.mean_rel_error_series(estimator, "count")
        series[f"{estimator}(intra)"] = intra_mode.mean_rel_error_series(
            estimator, "count"
        )
    return FigureResult(
        "fig04",
        "Round-boundary vs intra-round updates (constant-update model)",
        x_label="round (hour)",
        y_label="relative error",
        xs=round_mode.rounds,
        series=series,
        notes="Accuracy with updates spread across the round stays close "
        "to the clean round model (paper Fig. 4 / §5.2).",
    )
