"""Figures 20–21: the live Amazon/eBay experiments, on local surrogates.

The paper could not score these against ground truth; the simulators can,
so alongside the tracked series the figures also report exact truth.
"""

from __future__ import annotations

from ...core.aggregates import avg_measure, proportion_where
from ...marketplace.amazon import amazon_watch_env
from ...marketplace.ebay import ebay_watch_env
from ..runner import EstimatorFactory
from .common import DEFAULT_TRIALS, FigureResult, run_three_way


def run_fig20(
    trials: int = 1,
    rounds: int = 7,
    budget: int = 1000,
    k: int = 100,
    seed: int = 0,
    catalog_size: int = 12_000,
) -> FigureResult:
    """Figure 20: Amazon watches over Thanksgiving week (RS tracker).

    Rounds are days (round 1 = Nov 27); the promotion window covers
    rounds 2–3 (Thanksgiving + Black Friday).  Tracked: AVG(price), the
    share of men's watches, the share of wrist watches.
    """

    def specs_factory(schema):
        return [
            avg_measure(schema, "price", name="avg_price"),
            proportion_where(schema, {"gender": "men"}, name="share_men"),
            proportion_where(schema, {"type": "wrist"}, name="share_wrist"),
        ]

    result = run_three_way(
        "fig20",
        lambda s: amazon_watch_env(s, catalog_size=catalog_size),
        specs_factory,
        k=k,
        budget=budget,
        rounds=rounds,
        trials=trials,
        estimators=[EstimatorFactory("RS", "RS")],
        seed=seed,
    )
    series = {
        "avg_price(RS)": result.estimate_series("RS", "avg_price"),
        "avg_price(truth)": result.truth_series("avg_price"),
        "share_men%(RS)": [
            100 * v for v in result.estimate_series("RS", "share_men")
        ],
        "share_wrist%(RS)": [
            100 * v for v in result.estimate_series("RS", "share_wrist")
        ],
    }
    return FigureResult(
        "fig20",
        "Amazon watch dept. over Thanksgiving week (simulated)",
        x_label="day",
        y_label="dollars / percent",
        xs=result.rounds,
        series=series,
        notes="Average price dips during the promotion days (2-3) and "
        "recovers; composition shares barely move (paper Fig. 20).",
    )


def run_fig21(
    trials: int = DEFAULT_TRIALS,
    rounds: int = 9,
    budget: int = 250,
    k: int = 100,
    seed: int = 0,
    catalog_size: int = 16_000,
) -> FigureResult:
    """Figure 21: eBay women's wrist watches, FIX vs BID, hourly.

    One estimator instance per (algorithm, listing format), each with its
    own 250-query hourly budget — mirroring the paper's setup.
    """
    results = {}
    for format_label in ("FIX", "BID"):
        def specs_factory(schema, format_label=format_label):
            return [
                avg_measure(
                    schema,
                    "price",
                    where={"format": format_label},
                    name=f"avg_price_{format_label}",
                )
            ]

        results[format_label] = run_three_way(
            f"fig21_{format_label}",
            lambda s: ebay_watch_env(s, catalog_size=catalog_size),
            specs_factory,
            k=k,
            budget=budget,
            rounds=rounds,
            trials=trials,
            seed=seed,
        )
    series = {}
    xs = results["FIX"].rounds
    for format_label, result in results.items():
        spec = f"avg_price_{format_label}"
        series[f"truth-{format_label}"] = result.truth_series(spec)
        for estimator in result.estimator_names:
            series[f"{estimator}-{format_label}"] = result.estimate_series(
                estimator, spec
            )
    return FigureResult(
        "fig21",
        "eBay women's wrist watches: AVG price, FIX vs BID (simulated)",
        x_label="hour",
        y_label="average price ($)",
        xs=xs,
        series=series,
        notes="FIX prices sit above BID snapshots; REISSUE/RS track FIX "
        "more tightly than RESTART, with a smaller edge on the "
        "fast-churning BID listings (paper Fig. 21).",
    )
