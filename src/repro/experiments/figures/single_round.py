"""Figures 2, 3, 5, 6, 7: single-round COUNT(*) tracking accuracy.

* Figure 2 — default Autos churn, relative error per round.
* Figure 3 — same run, raw-estimate error bars (trial spread).
* Figure 5 — little change (+1 tuple/round): REISSUE plateaus, RS keeps
  improving.
* Figure 6 — big change (+10k/−5% per round): both beat RESTART.
* Figure 7 — big change with k=1: the Theorem-3.2 regime where RESTART
  wins.
"""

from __future__ import annotations

from ...core.aggregates import count_all
from ...data.autos import autos_source
from ...data.schedules import FreshTupleSchedule
from ...hiddendb.database import HiddenDatabase
from .common import (
    DEFAULT_SCALE,
    DEFAULT_TRIALS,
    FigureResult,
    autos_env_factory,
    error_series_figure,
    run_three_way,
    scaled_k,
)

#: Query budget the paper uses for the single-round accuracy figures.
SINGLE_ROUND_BUDGET = 500


def _count_specs(schema):
    return [count_all()]


def run_fig02(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 50,
    budget: int = SINGLE_ROUND_BUDGET,
    seed: int = 0,
) -> FigureResult:
    """Figure 2: relative error of COUNT(*) per round, default churn."""
    result = run_three_way(
        "fig02",
        autos_env_factory(scale=scale),
        _count_specs,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        seed=seed,
    )
    return error_series_figure(
        "fig02",
        "Relative error, COUNT(*), default Autos churn",
        result,
        "count",
        notes=f"scale={scale}, G={budget}, k={scaled_k(scale)}",
    )


def run_fig03(
    scale: float = DEFAULT_SCALE,
    trials: int = max(DEFAULT_TRIALS, 5),
    rounds: int = 50,
    budget: int = SINGLE_ROUND_BUDGET,
    seed: int = 0,
) -> FigureResult:
    """Figure 3: raw estimates (relative size) with across-trial spread."""
    result = run_three_way(
        "fig03",
        autos_env_factory(scale=scale),
        _count_specs,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        seed=seed,
    )
    truth = result.truth_series("count")
    series: dict[str, list[float]] = {}
    for estimator in result.estimator_names:
        estimates = result.estimate_series(estimator, "count")
        spreads = result.estimate_spread(estimator, "count")
        series[estimator] = [e / t for e, t in zip(estimates, truth)]
        series[f"{estimator}+sd"] = [
            (e + s) / t for e, s, t in zip(estimates, spreads, truth)
        ]
        series[f"{estimator}-sd"] = [
            (e - s) / t for e, s, t in zip(estimates, spreads, truth)
        ]
    return FigureResult(
        "fig03",
        "Raw estimates relative to truth (error bars = trial std dev)",
        x_label="round",
        y_label="relative size",
        xs=result.rounds,
        series=series,
        notes="All three stay centred on 1.0 (unbiased); RS has the "
        "shortest bars.",
    )


def run_fig05(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 50,
    budget: int = SINGLE_ROUND_BUDGET,
    seed: int = 0,
) -> FigureResult:
    """Figure 5: little change — one inserted tuple per round."""
    factory = autos_env_factory(
        scale=scale, inserts_per_round=int(1 / max(scale, 1e-9)),
        delete_fraction=0.0,
    )
    # inserts_per_round is pre-scaled inside the factory; the expression
    # above cancels the scaling so exactly one tuple lands per round.
    result = run_three_way(
        "fig05",
        factory,
        _count_specs,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        seed=seed,
    )
    return error_series_figure(
        "fig05",
        "Relative error under little change (+1 tuple/round)",
        result,
        "count",
        notes="REISSUE tapers off; RS keeps decreasing (paper §4).",
    )


def _shallow_tree_estimators():
    """All three algorithms drilling large domains first.

    The paper's big-change experiments (Figs. 6-7) exhibit the k=1
    crossover of Theorem 3.2 only when fresh drill-downs are *shallow*
    (big fan-out near the root).  Our Autos surrogate orders attributes
    small-domain-first by default, which makes k=1 drill-downs a dozen
    levels deep and keeps REISSUE ahead; flipping the drill order to
    large-domain-first recreates the paper's regime.  See the
    attribute-order ablation for the isolated effect.
    """
    from ...data.autos import AUTOS_DOMAIN_SIZES
    from ..runner import EstimatorFactory

    order = tuple(
        sorted(range(len(AUTOS_DOMAIN_SIZES)),
               key=lambda i: -AUTOS_DOMAIN_SIZES[i])
    )
    return [
        EstimatorFactory(name, name, free_order=order)
        for name in ("RESTART", "REISSUE", "RS")
    ]


def _big_change_factory(scale: float, inserts: int, delete_fraction: float,
                        start: int):
    n_start = max(50, int(round(start * scale)))
    n_inserts = max(1, int(round(inserts * scale)))

    def factory(seed: int):
        source = autos_source(seed=seed)
        db = HiddenDatabase(source.schema)
        db.insert_many(source.batch_columns(n_start))
        schedule = FreshTupleSchedule(
            source,
            inserts_per_round=n_inserts,
            delete_fraction=delete_fraction,
        )
        return db, schedule

    return factory


def run_fig06(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 10,
    budget: int = SINGLE_ROUND_BUDGET,
    seed: int = 0,
) -> FigureResult:
    """Figure 6: big change — start 100k, +10000 and −5% per round."""
    result = run_three_way(
        "fig06",
        _big_change_factory(scale, 10_000, 0.05, 100_000),
        _count_specs,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        estimators=_shallow_tree_estimators(),
        seed=seed,
    )
    return error_series_figure(
        "fig06",
        "Relative error under big change (+10k/-5% per round)",
        result,
        "count",
    )


def run_fig07(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 20,
    budget: int = SINGLE_ROUND_BUDGET,
    seed: int = 0,
) -> FigureResult:
    """Figure 7: big change with k=1 — RESTART wins (Theorem 3.2 regime)."""
    result = run_three_way(
        "fig07",
        _big_change_factory(scale, 10_000, 0.05, 100_000),
        _count_specs,
        k=1,
        budget=budget,
        rounds=rounds,
        trials=trials,
        estimators=_shallow_tree_estimators(),
        seed=seed,
    )
    return error_series_figure(
        "fig07",
        "Big change with k=1: reissuing loses its edge",
        result,
        "count",
        notes="With k=1, a heavily churned drill-down underflows and must "
        "roll far up, so updates cost as much as fresh drill-downs.",
    )
