"""Shared infrastructure for the per-figure experiment builders.

Every ``run_figXX`` function returns a :class:`FigureResult` — the series
the paper's figure plots, regenerated at a configurable ``scale`` of the
paper's dataset size (defaults keep the whole suite fast; pass
``scale=1.0`` to run at full published size).  k is scaled together with n
so the overflow/underflow profile — and therefore drill-down behaviour —
is preserved; the query budget G is *not* scaled, matching the paper's
absolute per-round limits.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from ...api.config import EngineConfig
from ...core.aggregates import AnySpec
from ...data.autos import AUTOS_DEFAULT_INITIAL, AUTOS_TOTAL_TUPLES, autos_snapshot
from ...data.schedules import SnapshotPoolSchedule, UpdateSchedule
from ...hiddendb.database import HiddenDatabase
from ...hiddendb.schema import Schema
from ..ascii_chart import render_chart, render_table
from ..metrics import ExperimentResult
from ..runner import EstimatorFactory, Experiment, default_estimators

#: Default fraction of the paper's dataset size used by the benchmarks.
DEFAULT_SCALE = 0.1

#: Default number of independent trials to average relative errors over.
DEFAULT_TRIALS = 3

#: The paper's default top-k page size (Yahoo! Autos interface).
PAPER_K = 1000

#: The paper's per-round insertion count for the default Autos schedule.
PAPER_INSERTS = 300

#: The paper's per-round deletion fraction for the default Autos schedule.
PAPER_DELETE_FRACTION = 0.001


class FigureResult:
    """The regenerated content of one paper figure."""

    def __init__(
        self,
        figure_id: str,
        title: str,
        x_label: str,
        y_label: str,
        xs: Sequence[float],
        series: Mapping[str, Sequence[float]],
        notes: str = "",
        log_y: bool = False,
        meta: Mapping[str, object] | None = None,
    ):
        self.figure_id = figure_id
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.xs = list(xs)
        self.series = {name: list(values) for name, values in series.items()}
        self.notes = notes
        self.log_y = log_y
        # Machine-readable extras (query counts, backend, ...) consumed by
        # the benchmark harness's BENCH_*.json emitter.
        self.meta = dict(meta) if meta else {}

    def table(self) -> str:
        headers = [self.x_label] + list(self.series)
        rows = []
        for position, x in enumerate(self.xs):
            row: list[object] = [x]
            for values in self.series.values():
                row.append(
                    values[position] if position < len(values) else math.nan
                )
            rows.append(row)
        return render_table(headers, rows)

    def chart(self) -> str:
        return render_chart(
            self.series,
            y_label=self.y_label,
            x_label=self.x_label,
            log_y=self.log_y,
        )

    def to_text(self) -> str:
        parts = [f"=== {self.figure_id}: {self.title} ===", self.table(), "",
                 self.chart()]
        if self.notes:
            parts.append("")
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FigureResult({self.figure_id!r}, series={list(self.series)})"


def scaled_k(scale: float, paper_k: int = PAPER_K, floor: int = 5) -> int:
    """Scale the interface page size with the dataset (preserves n/k)."""
    return max(floor, int(round(paper_k * scale)))


def autos_env_factory(
    scale: float = DEFAULT_SCALE,
    inserts_per_round: int = PAPER_INSERTS,
    delete_fraction: float = PAPER_DELETE_FRACTION,
    deletes_per_round: int | None = None,
    initial: int = AUTOS_DEFAULT_INITIAL,
    total: int = AUTOS_TOTAL_TUPLES,
    num_attributes: int | None = None,
    backend: str | None = None,
) -> Callable[[int], tuple[HiddenDatabase, UpdateSchedule]]:
    """Environment factory for the scaled Yahoo! Autos default workload."""
    n_total = max(20, int(round(total * scale)))
    n_initial = min(n_total - 1, max(10, int(round(initial * scale))))
    n_inserts = max(1, int(round(inserts_per_round * scale)))
    if deletes_per_round is not None:
        deletes_per_round = max(0, int(round(deletes_per_round * scale)))

    def factory(seed: int) -> tuple[HiddenDatabase, UpdateSchedule]:
        schema, payloads = autos_snapshot(n_total, seed)
        if num_attributes is not None:
            schema, payloads = _truncate_attributes(
                schema, payloads, num_attributes
            )
        db = HiddenDatabase(schema, backend=backend)
        db.insert_many(payloads[:n_initial])
        schedule = SnapshotPoolSchedule(
            payloads[n_initial:],
            inserts_per_round=n_inserts,
            delete_fraction=delete_fraction,
            deletes_per_round=deletes_per_round,
        )
        return db, schedule

    return factory


def _truncate_attributes(
    schema: Schema, payloads, num_attributes: int
) -> tuple[Schema, list]:
    """Keep the first ``num_attributes`` attributes (Figure 11's m sweep).

    The retained prefix keeps the top of the query tree identical, so the
    comparison isolates the effect of tree depth — which the paper shows
    (and this reproduction confirms) is negligible because drill-downs
    rarely reach the lowest levels.
    """
    truncated = Schema(schema.attributes[:num_attributes], schema.measures)
    seen: set[bytes] = set()
    converted = []
    for values, measures in payloads:
        head = values[:num_attributes]
        if head in seen:
            continue  # truncation may create duplicates; drop them
        seen.add(head)
        converted.append((head, measures))
    return truncated, converted


def run_three_way(
    name: str,
    env_factory: Callable[[int], tuple[HiddenDatabase, UpdateSchedule]],
    specs_factory: Callable[[Schema], Sequence[AnySpec]],
    k: int,
    budget: int,
    rounds: int,
    trials: int = DEFAULT_TRIALS,
    estimators: Sequence[EstimatorFactory] | None = None,
    seed: int = 0,
    intra_round: bool = False,
    backend: str | None = None,
    config: EngineConfig | None = None,
) -> ExperimentResult:
    """Run one experiment comparing estimators (default: all three).

    ``config`` routes every engine knob at once (and wins over ``k`` /
    ``budget`` / ``backend`` when given); execution goes through the
    :class:`repro.api.Engine` facade either way.
    """
    experiment = Experiment(
        name,
        env_factory,
        specs_factory,
        k=k,
        budget_per_round=budget,
        rounds=rounds,
        trials=trials,
        estimators=estimators or default_estimators(),
        base_seed=seed,
        intra_round=intra_round,
        backend=backend,
        config=config,
    )
    return experiment.run()


def error_series_figure(
    figure_id: str,
    title: str,
    result: ExperimentResult,
    spec: str,
    notes: str = "",
    log_y: bool = False,
) -> FigureResult:
    """Package a result's per-round relative errors as a figure."""
    series = {
        estimator: result.mean_rel_error_series(estimator, spec)
        for estimator in result.estimator_names
    }
    return FigureResult(
        figure_id,
        title,
        x_label="round",
        y_label="relative error",
        xs=result.rounds,
        series=series,
        notes=notes,
        log_y=log_y,
        meta={
            "mean_queries_per_round": {
                estimator: result.mean_queries_per_round(estimator)
                for estimator in result.estimator_names
            },
        },
    )
