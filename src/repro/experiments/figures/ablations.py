"""Ablations for the design choices DESIGN.md calls out.

* A — strict vs lazy parent checking in reissue updates: the lazy walk
  (Algorithm 1 verbatim) skips re-validating an accepted node's parent and
  silently mis-prices p(q) after heavy deletions.
* B — within-round client-side answer cache: how much of REISSUE's edge
  survives if RESTART is allowed to cache duplicate queries in a round.
* C — RS bootstrap budget ϖ: too little = noisy change estimates, too
  much = budget wasted on pilots.
* D — drill-down attribute order: small domains first (schema order)
  vs large domains first.
"""

from __future__ import annotations

import statistics

from ...core.aggregates import count_all
from ..runner import EstimatorFactory
from .common import (
    DEFAULT_SCALE,
    DEFAULT_TRIALS,
    FigureResult,
    autos_env_factory,
    run_three_way,
    scaled_k,
)


def _count_specs(schema):
    return [count_all()]


def run_ablation_parent_check(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 25,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Ablation A: strict vs lazy reissue walks under deletion-heavy churn."""
    estimators = [
        EstimatorFactory("REISSUE-strict", "REISSUE", parent_check="strict"),
        EstimatorFactory("REISSUE-lazy", "REISSUE", parent_check="lazy"),
    ]
    factory = autos_env_factory(
        scale=scale, inserts_per_round=0, delete_fraction=0.03,
    )
    result = run_three_way(
        "ablA", factory, _count_specs,
        k=scaled_k(scale), budget=budget, rounds=rounds, trials=trials,
        estimators=estimators, seed=seed,
    )
    series = {
        name: result.mean_rel_error_series(name, "count")
        for name in result.estimator_names
    }
    return FigureResult(
        "ablation_parent_check",
        "Strict vs lazy parent checking under heavy deletions",
        x_label="round",
        y_label="relative error",
        xs=result.rounds,
        series=series,
        notes="The lazy walk accepts stale top-nodes whose parents no "
        "longer overflow, mis-pricing p(q).",
    )


def run_ablation_client_cache(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 25,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Ablation B: does a within-round client cache rescue RESTART?"""
    estimators = [
        EstimatorFactory("RESTART", "RESTART"),
        EstimatorFactory("RESTART-cache", "RESTART", cache_within_round=True),
        EstimatorFactory("REISSUE", "REISSUE"),
    ]
    result = run_three_way(
        "ablB", autos_env_factory(scale=scale), _count_specs,
        k=scaled_k(scale), budget=budget, rounds=rounds, trials=trials,
        estimators=estimators, seed=seed,
    )
    series = {
        name: result.mean_rel_error_series(name, "count")
        for name in result.estimator_names
    }
    return FigureResult(
        "ablation_client_cache",
        "RESTART with a within-round answer cache vs REISSUE",
        x_label="round",
        y_label="relative error",
        xs=result.rounds,
        series=series,
        notes="Caching duplicate shallow queries helps RESTART, but it "
        "still cannot reuse knowledge across rounds.",
    )


def run_ablation_bootstrap(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 30,
    budget: int = 500,
    seed: int = 0,
    pilot_counts=(4, 10, 25),
) -> FigureResult:
    """Ablation C: RS bootstrap budget ϖ (pilot drill-downs per group)."""
    estimators = [
        EstimatorFactory(f"RS(w={w})", "RS", bootstrap_per_group=w)
        for w in pilot_counts
    ]
    result = run_three_way(
        "ablC", autos_env_factory(scale=scale), _count_specs,
        k=scaled_k(scale), budget=budget, rounds=rounds, trials=trials,
        estimators=estimators, seed=seed,
    )
    series = {
        name: result.mean_rel_error_series(name, "count")
        for name in result.estimator_names
    }
    return FigureResult(
        "ablation_bootstrap",
        "RS sensitivity to the bootstrap budget",
        x_label="round",
        y_label="relative error",
        xs=result.rounds,
        series=series,
        notes="The default w=10 balances pilot cost against allocation "
        "quality.",
    )


def run_ablation_attr_order(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 20,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Ablation D: drill-down attribute order (small vs large domains first)."""

    def large_first_order(schema):
        return sorted(
            range(schema.num_attributes),
            key=lambda i: -schema.attributes[i].size,
        )

    # free_order must be resolved per schema; build via a tiny factory shim.
    class _OrderedFactory(EstimatorFactory):
        def build(self, interface, specs, budget_, seed_):
            return self.cls(
                interface, specs, budget_per_round=budget_, seed=seed_,
                free_order=large_first_order(interface.schema),
            )

    estimators = [
        EstimatorFactory("REISSUE-small-first", "REISSUE"),
        _OrderedFactory("REISSUE-large-first", "REISSUE"),
    ]
    result = run_three_way(
        "ablD", autos_env_factory(scale=scale), _count_specs,
        k=scaled_k(scale), budget=budget, rounds=rounds, trials=trials,
        estimators=estimators, seed=seed,
    )
    series = {
        name: result.mean_rel_error_series(name, "count")
        for name in result.estimator_names
    }
    queries_note = " | ".join(
        f"{name}: {result.mean_queries_per_round(name):.0f} q/round, "
        f"{statistics.mean(d for trial in result.drilldowns[name] for d in trial):.1f} drills/round"
        for name in result.estimator_names
    )
    return FigureResult(
        "ablation_attr_order",
        "Drill-down attribute order: small-domain-first vs large-first",
        x_label="round",
        y_label="relative error",
        xs=result.rounds,
        series=series,
        notes="Large domains first = fatter fan-out near the root = "
        f"shallower drill-downs. {queries_note}",
    )
