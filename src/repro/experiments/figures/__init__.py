"""Per-figure experiment builders and the figure registry."""

from .ablations import (
    run_ablation_attr_order,
    run_ablation_bootstrap,
    run_ablation_client_cache,
    run_ablation_parent_check,
)
from .common import DEFAULT_SCALE, DEFAULT_TRIALS, FigureResult
from .efficiency import run_fig18, run_fig19
from .intra_round import run_fig04
from .live import run_fig20, run_fig21
from .single_round import run_fig02, run_fig03, run_fig05, run_fig06, run_fig07
from .sweeps import (
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
)
from .trans_round import run_fig14, run_fig15, run_fig16, run_fig17

#: Every reproducible figure, keyed the way the CLI and benchmarks name them.
FIGURES = {
    "fig02": run_fig02,
    "fig03": run_fig03,
    "fig04": run_fig04,
    "fig05": run_fig05,
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig19": run_fig19,
    "fig20": run_fig20,
    "fig21": run_fig21,
    "ablation_parent_check": run_ablation_parent_check,
    "ablation_client_cache": run_ablation_client_cache,
    "ablation_bootstrap": run_ablation_bootstrap,
    "ablation_attr_order": run_ablation_attr_order,
}

__all__ = ["DEFAULT_SCALE", "DEFAULT_TRIALS", "FIGURES", "FigureResult"] + [
    name for name in dir() if name.startswith("run_")
]
