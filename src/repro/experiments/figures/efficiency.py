"""Figures 18–19: query-cost efficiency.

* Figure 18 — queries per round needed to reach a target relative error:
  for each target the smallest per-round budget whose tracking run settles
  at or below the target.
* Figure 19 — cumulative drill-downs performed vs cumulative queries
  spent: REISSUE/RS convert the same budget into far more drill-downs.
"""

from __future__ import annotations

import math

from ...core.aggregates import count_all
from .common import (
    DEFAULT_SCALE,
    DEFAULT_TRIALS,
    FigureResult,
    autos_env_factory,
    run_three_way,
    scaled_k,
)


def _count_specs(schema):
    return [count_all()]


def run_fig18(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 15,
    seed: int = 0,
    targets=(0.28, 0.21, 0.14),
    budget_grid=(40, 80, 120, 180, 260, 360, 480, 620),
) -> FigureResult:
    """Figure 18: smallest budget achieving each relative-error target."""
    env = autos_env_factory(scale=scale)
    k = scaled_k(scale)
    # One tracking run per candidate budget; scan each estimator's tail
    # error and record the first (smallest) budget under each target.
    runs = {
        budget: run_three_way(
            f"fig18_g{budget}", env, _count_specs, k=k, budget=budget,
            rounds=rounds, trials=trials, seed=seed,
        )
        for budget in budget_grid
    }
    estimators = next(iter(runs.values())).estimator_names
    series = {estimator: [] for estimator in estimators}
    for target in targets:
        for estimator in estimators:
            needed = math.nan
            for budget in budget_grid:
                if runs[budget].tail_rel_error(estimator, "count") <= target:
                    needed = float(budget)
                    break
            series[estimator].append(needed)
    return FigureResult(
        "fig18",
        "Per-round query budget needed to reach an error target",
        x_label="target relative error",
        y_label="queries per round",
        xs=list(targets),
        series=series,
        notes="Lower is better; REISSUE/RS need a fraction of RESTART's "
        "budget for the same accuracy (paper Fig. 18).  NaN = not "
        "reachable within the scanned grid.",
    )


def run_fig19(
    scale: float = DEFAULT_SCALE,
    trials: int = DEFAULT_TRIALS,
    rounds: int = 50,
    budget: int = 500,
    seed: int = 0,
) -> FigureResult:
    """Figure 19: cumulative drill-downs vs cumulative query cost."""
    result = run_three_way(
        "fig19",
        autos_env_factory(scale=scale),
        _count_specs,
        k=scaled_k(scale),
        budget=budget,
        rounds=rounds,
        trials=trials,
        seed=seed,
    )
    series = {
        estimator: result.cumulative_drilldowns(estimator)
        for estimator in result.estimator_names
    }
    # The x axis is cumulative queries, identical across estimators since
    # every algorithm spends its full per-round budget.
    xs = result.cumulative_queries(result.estimator_names[0])
    return FigureResult(
        "fig19",
        "Cumulative drill-downs for the same cumulative query cost",
        x_label="cumulative queries",
        y_label="cumulative drill-downs",
        xs=xs,
        series=series,
        notes="Historic answers let REISSUE/RS squeeze several times more "
        "drill-downs out of the same budget (paper Fig. 19).",
    )
