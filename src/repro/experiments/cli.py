"""Command-line entry point: list and run the paper's experiments.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments run fig02 --scale 0.1 --trials 3
    repro-experiments run fig12 --backend packed --data-plane vectorized
    repro-experiments run all --out results.txt

The CLI is a thin client of :mod:`repro.api`: the flags populate one
:class:`~repro.api.EngineConfig` whose scope every figure driver's engine
inherits.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from ..api import EngineConfig
from ..hiddendb.backends import available_backends
from ..obs import OBS, format_span_tree
from .figures import FIGURES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures of 'Aggregate Estimation Over Dynamic "
            "Hidden Web Databases' (VLDB 2014) on local simulators."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run = commands.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("figure", help="figure id (see 'list') or 'all'")
    run.add_argument("--scale", type=float, default=None,
                     help="fraction of the paper's dataset size")
    run.add_argument("--trials", type=int, default=None,
                     help="independent trials to average over")
    run.add_argument("--rounds", type=int, default=None,
                     help="number of rounds to track")
    run.add_argument("--budget", type=int, default=None,
                     help="per-round query budget G")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="storage backend for every simulated database "
             "(default: the built-in blocked sorted list)",
    )
    run.add_argument(
        "--data-plane",
        choices=("vectorized", "scalar"),
        default=None,
        help="data plane for bulk loads and query evaluation (default: "
             "the process default — set_data_plane, then REPRO_DATA_PLANE, "
             "then 'vectorized')",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count of the sharded storage engine "
             "(requires --backend sharded)",
    )
    run.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="worker threads per engine round (and per-shard bulk "
             "dispatch width on a sharded backend); default 1 = sequential."
             "  Estimates are bit-identical at any setting.",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="enable the repro.obs observability plane and print a "
             "per-phase span tree after each figure (estimates are "
             "bit-identical with or without it)",
    )
    run.add_argument("--out", default=None, help="append output to a file")
    return parser


def _supported_kwargs(function, candidates: dict) -> dict:
    accepted = inspect.signature(function).parameters
    return {
        key: value
        for key, value in candidates.items()
        if value is not None and key in accepted
    }


def _run_one(figure_id: str, args: argparse.Namespace) -> str:
    function = FIGURES[figure_id]
    kwargs = _supported_kwargs(
        function,
        {
            "scale": args.scale,
            "trials": args.trials,
            "rounds": args.rounds,
            "budget": args.budget,
            "seed": args.seed,
        },
    )
    started = time.perf_counter()
    figure = function(**kwargs)
    elapsed = time.perf_counter() - started
    return f"{figure.to_text()}\n(ran in {elapsed:.1f}s)\n"


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for figure_id, function in FIGURES.items():
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"{figure_id:24s} {summary}")
        return 0
    if args.shards is not None and args.backend != "sharded":
        parser.error("--shards requires --backend sharded")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.parallelism is not None and args.parallelism < 1:
        parser.error("--parallelism must be at least 1")
    if args.figure != "all" and args.figure not in FIGURES:
        print(f"unknown figure {args.figure!r}; try 'list'", file=sys.stderr)
        return 2
    targets = list(FIGURES) if args.figure == "all" else [args.figure]
    chunks = []
    # One config object carries every knob; applying it scopes the process
    # defaults that the figure drivers' engines then inherit.
    config = EngineConfig(
        backend=args.backend,
        data_plane=args.data_plane,
        shards=args.shards,
        parallelism=args.parallelism,
        observability=True if args.profile else None,
    )
    with config.apply():
        for figure_id in targets:
            if args.profile:
                # Fresh counters and span log per figure, so each printed
                # profile covers exactly one figure run.
                OBS.reset()
            text = _run_one(figure_id, args)
            if args.profile:
                text += (
                    f"\n-- profile: {figure_id} "
                    f"(spans dropped: {OBS.spans.dropped}) --\n"
                    f"{format_span_tree(OBS.spans.records())}\n"
                )
            print(text)
            chunks.append(text)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write("\n".join(chunks))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
