"""Dataset surrogates and dynamic update workloads."""

from .autos import (
    AUTOS_DEFAULT_INITIAL,
    AUTOS_DOMAIN_SIZES,
    AUTOS_TOTAL_TUPLES,
    autos_schema,
    autos_snapshot,
    autos_source,
)
from .schedules import (
    CompositeSchedule,
    FreshTupleSchedule,
    IntraRoundDriver,
    MeasureDriftSchedule,
    NullSchedule,
    SnapshotPoolSchedule,
    apply_round,
)
from .synthetic import (
    SyntheticSource,
    skewed_source,
    uniform_boolean_source,
    uniform_weights,
    zipf_weights,
)

__all__ = [
    "AUTOS_DEFAULT_INITIAL",
    "AUTOS_DOMAIN_SIZES",
    "AUTOS_TOTAL_TUPLES",
    "CompositeSchedule",
    "FreshTupleSchedule",
    "IntraRoundDriver",
    "MeasureDriftSchedule",
    "NullSchedule",
    "SnapshotPoolSchedule",
    "SyntheticSource",
    "apply_round",
    "autos_schema",
    "autos_snapshot",
    "autos_source",
    "skewed_source",
    "uniform_boolean_source",
    "uniform_weights",
    "zipf_weights",
]
