"""Surrogate for the Yahoo! Autos snapshot used throughout the paper's §6.

The original snapshot (188,917 tuples, 38 categorical attributes, domain
sizes 2–38, price/mileage columns) is not public.  This module generates a
statistically matched stand-in: same tuple count, same attribute count, the
same 2–38 domain-size span, skewed value frequencies (real categorical
columns like make/model/color are Zipf-ish), and log-normal prices.

Drill-down estimators interact with the data *only* through the
overflow/underflow profile of conjunctive prefix queries, which depends on
(n, k, m, domain sizes, value skew) — all of which are matched — so the
estimator-versus-estimator comparisons carry over.
"""

from __future__ import annotations

import math
import random

from ..hiddendb.schema import Attribute, Schema
from .synthetic import Payload, SyntheticSource, zipf_weights

#: Published size of the Yahoo! Autos snapshot.
AUTOS_TOTAL_TUPLES = 188_917

#: Default number of tuples loaded at round 1 in the paper's experiments.
AUTOS_DEFAULT_INITIAL = 170_000

#: Domain sizes for the 38 attributes, spanning the published 2..38 range.
AUTOS_DOMAIN_SIZES = (
    2, 2, 2, 3, 3, 4, 4, 5, 5, 6,
    6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 24, 26, 28,
    30, 32, 33, 34, 35, 36, 37, 38,
)

_ATTRIBUTE_NAMES = (
    "certified", "one_owner", "warranty", "fuel", "drivetrain",
    "doors", "transmission", "body_style", "seats", "cylinders",
    "title_status", "price_band", "mileage_band", "engine_size", "year_band",
    "trim_level", "airbags", "wheel_size", "audio", "safety_rating",
    "package", "options_a", "options_b", "options_c", "interior",
    "region", "seller_type", "state", "exterior_color", "interior_color",
    "model_year", "series", "mpg_band", "zip_zone", "dealer_group",
    "model_family", "submodel", "make",
)


def autos_schema() -> Schema:
    """Schema of the surrogate: 38 categorical attributes + two measures."""
    attrs = [
        Attribute(name, size)
        for name, size in zip(_ATTRIBUTE_NAMES, AUTOS_DOMAIN_SIZES)
    ]
    return Schema(attrs, measures=("price", "mileage"))


def _price_mileage_sampler(rng: random.Random) -> tuple[float, float]:
    """Log-normal price around $15k and a mileage figure."""
    price = math.exp(rng.gauss(9.6, 0.55))
    mileage = max(0.0, rng.gauss(60_000, 30_000))
    return round(price, 2), round(mileage, 1)


def autos_source(seed: int = 0, skew: float = 0.7) -> SyntheticSource:
    """A :class:`SyntheticSource` producing surrogate Yahoo! Autos tuples."""
    schema = autos_schema()
    weights = [zipf_weights(size, skew) for size in AUTOS_DOMAIN_SIZES]
    return SyntheticSource(
        schema,
        weights,
        measure_sampler=_price_mileage_sampler,
        seed=seed,
    )


def autos_snapshot(
    total: int = AUTOS_TOTAL_TUPLES, seed: int = 0
) -> tuple[Schema, list[Payload]]:
    """The full surrogate snapshot: schema plus ``total`` distinct payloads.

    ``total`` can be scaled down for fast experiments; distributional shape
    is unchanged.
    """
    source = autos_source(seed=seed)
    return source.schema, source.batch(total, distinct=True)
