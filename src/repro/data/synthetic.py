"""Synthetic hidden-database content generators.

A :class:`SyntheticSource` couples a schema with per-attribute value
distributions and a measure sampler.  It can produce a bulk snapshot (to
load a database and fill an insertion pool) and endless fresh tuples (for
schedules that insert more rows than any snapshot holds).

Value sampling is vectorised with numpy.  The columnar entry point is
:meth:`SyntheticSource.batch_columns`, which returns a
:class:`~repro.hiddendb.tuples.TupleBatch` that
:meth:`repro.hiddendb.database.HiddenDatabase.insert_many` loads without
materializing per-tuple Python objects; :meth:`SyntheticSource.batch`
wraps it into scalar ``(values, measures)`` payloads for pool-based
schedules.

RNG streams (see the ``seed`` parameter): the bulk path and the per-call
path draw from *independent* generators, so interleaving them never
perturbs either stream.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

import numpy as np

from ..errors import SchemaError
from ..hiddendb.schema import Attribute, Schema
from ..hiddendb.tuples import TupleBatch

#: A tuple payload: categorical values plus measure values.
Payload = tuple[bytes, tuple[float, ...]]

#: Signature of a measure sampler: rng -> measure vector.
MeasureSampler = Callable[[random.Random], tuple[float, ...]]


def _unique_rows_in_order(matrix: np.ndarray) -> np.ndarray:
    """First occurrence of each distinct row, in original row order.

    One vectorized pass: rows are compared as opaque byte strings via a
    void view, and the sorted first-occurrence indices restore order.
    """
    if len(matrix) <= 1:
        return matrix
    as_void = np.ascontiguousarray(matrix).view(
        np.dtype((np.void, matrix.shape[1]))
    ).ravel()
    _, first = np.unique(as_void, return_index=True)
    first.sort()
    return matrix[first]


def zipf_weights(size: int, exponent: float = 0.8) -> np.ndarray:
    """Zipf-like weights over ``size`` values — real catalogs are skewed."""
    ranks = np.arange(1, size + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def uniform_weights(size: int) -> np.ndarray:
    """Uniform weights over ``size`` values."""
    return np.full(size, 1.0 / size)


class SyntheticSource:
    """Generates tuple payloads for a schema.

    Parameters
    ----------
    schema:
        Target schema.
    attr_weights:
        Per-attribute value-probability vectors; ``None`` means uniform on
        every attribute.
    measure_sampler:
        Draws the measure vector for one tuple; ``None`` produces empty
        measures (schema must then declare no measures).
    seed:
        Seeds two documented, independent streams: the numpy generator
        ``default_rng(seed)`` behind every bulk draw
        (:meth:`batch_columns` / :meth:`batch`), and a Python
        ``random.Random`` behind the per-call path (:meth:`one` and
        default measure sampling), derived from the tag
        ``"repro-synthetic-per-call:<seed>"`` so the two streams never
        coincide even though they share one ``seed`` argument.  Per-call
        RNGs can also be supplied explicitly for reproducible
        interleaving with schedules.
    """

    def __init__(
        self,
        schema: Schema,
        attr_weights: Sequence[np.ndarray] | None = None,
        measure_sampler: MeasureSampler | None = None,
        seed: int = 0,
    ):
        self.schema = schema
        if attr_weights is None:
            attr_weights = [uniform_weights(a.size) for a in schema.attributes]
        if len(attr_weights) != schema.num_attributes:
            raise SchemaError("attr_weights length must match attribute count")
        for attribute, weights in zip(schema.attributes, attr_weights):
            if len(weights) != attribute.size:
                raise SchemaError(
                    f"weight vector for {attribute.name!r} has wrong length"
                )
        self.attr_weights = [np.asarray(w, dtype=float) for w in attr_weights]
        # Normalised per-attribute CDFs, precomputed once: bulk draws invert
        # them with searchsorted instead of paying Generator.choice's
        # per-call weight validation and cumsum (the post-PR 3 profile's
        # hottest remaining spot).  The inversion consumes the generator's
        # uniform stream exactly like Generator.choice(p=...) does, so the
        # draw stream is unchanged (see test_synthetic's parity test) —
        # including choice's weight validation, which moves here.
        choice_atol = np.sqrt(np.finfo(np.float64).eps)
        self._attr_cdfs = []
        for attribute, weights in zip(schema.attributes, self.attr_weights):
            if not np.all(np.isfinite(weights)) or np.any(weights < 0):
                raise SchemaError(
                    f"weights for {attribute.name!r} must be finite and "
                    f"non-negative"
                )
            if abs(weights.sum() - 1.0) > choice_atol:
                raise SchemaError(
                    f"weights for {attribute.name!r} must sum to 1"
                )
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._attr_cdfs.append(cdf)
        if measure_sampler is None and schema.measures:
            raise SchemaError(
                "schema declares measures but no measure_sampler was given"
            )
        self.measure_sampler = measure_sampler
        # Independent streams: bulk draws come from the numpy generator,
        # per-call draws from a tag-derived Python generator (seeding both
        # from the bare integer would couple them).
        self._np_rng = np.random.default_rng(seed)
        self._py_rng = random.Random(f"repro-synthetic-per-call:{seed}")

    # ------------------------------------------------------------------
    # Bulk generation
    # ------------------------------------------------------------------
    def batch_columns(
        self,
        count: int,
        distinct: bool = True,
        max_attempts: int = 20,
        rng: random.Random | None = None,
    ) -> TupleBatch:
        """Generate ``count`` rows as one columnar :class:`TupleBatch`.

        The paper assumes all tuples are distinct; with realistic attribute
        counts collisions are vanishingly rare, so rejection sampling
        converges immediately — distinctness is enforced with one
        order-preserving vectorized unique pass per attempt.

        ``rng`` (per-call path): when given, value draws come from a numpy
        generator derived from it and measures are sampled from it
        directly, so a schedule's own stream drives the content.
        """
        if rng is None:
            np_rng = self._np_rng
            measure_rng = self._py_rng
        else:
            np_rng = np.random.default_rng(rng.getrandbits(64))
            measure_rng = rng
        if count == 0:
            return TupleBatch(
                np.empty((0, self.schema.num_attributes), dtype=np.uint8),
                np.empty((0, len(self.schema.measures)), dtype=np.float64),
            )
        kept: list[np.ndarray] = []
        total_kept = 0
        seen: set[bytes] | None = None
        attempts = 0
        while total_kept < count:
            attempts += 1
            if attempts > max_attempts:
                raise SchemaError(
                    f"could not generate {count} distinct value vectors "
                    f"(leaf space too small?)"
                )
            needed = count - total_kept
            matrix = np.empty(
                (needed, len(self.attr_weights)), dtype=np.uint8
            )
            for position, cdf in enumerate(self._attr_cdfs):
                # Inverse-CDF draw, stream-identical to
                # np_rng.choice(len(w), size=needed, p=w): one uniform
                # vector per attribute, searchsorted against the
                # precomputed CDF.
                matrix[:, position] = cdf.searchsorted(
                    np_rng.random(needed), side="right"
                )
            if distinct:
                matrix = _unique_rows_in_order(matrix)
                if seen:
                    fresh = [
                        row for row in matrix if row.tobytes() not in seen
                    ]
                    matrix = (
                        np.stack(fresh)
                        if fresh
                        else matrix[:0]
                    )
            matrix = matrix[:needed]
            if len(matrix):
                kept.append(matrix)
                total_kept += len(matrix)
            if distinct and total_kept < count and seen is None:
                # Entering a retry: only now pay the per-row cost of a
                # cross-attempt dedup set (the common case never does).
                seen = {
                    row.tobytes() for chunk in kept for row in chunk
                }
            elif seen is not None and len(matrix):
                seen.update(row.tobytes() for row in matrix)
        values = kept[0] if len(kept) == 1 else np.concatenate(kept)
        num_measures = len(self.schema.measures)
        if self.measure_sampler is None:
            measures = np.empty((count, 0), dtype=np.float64)
        else:
            measures = np.array(
                [self.measure_sampler(measure_rng) for _ in range(count)],
                dtype=np.float64,
            ).reshape(count, num_measures)
        return TupleBatch(values, measures)

    def batch(
        self,
        count: int,
        distinct: bool = True,
        max_attempts: int = 20,
    ) -> list[Payload]:
        """Generate ``count`` payloads, optionally distinct on values.

        Scalar view of :meth:`batch_columns` — identical draws from the
        same streams, materialized as ``(values, measures)`` pairs.
        """
        return self.batch_columns(
            count, distinct=distinct, max_attempts=max_attempts
        ).payloads()

    def one(self, rng: random.Random | None = None) -> Payload:
        """Generate a single payload (used by fresh-insert schedules)."""
        rng = rng if rng is not None else self._py_rng
        values = bytes(
            rng.choices(range(len(weights)), weights=weights)[0]
            for weights in self.attr_weights
        )
        return values, self._sample_measures(rng)

    def _sample_measures(
        self, rng: random.Random | None = None
    ) -> tuple[float, ...]:
        if self.measure_sampler is None:
            return ()
        return self.measure_sampler(rng if rng is not None else self._py_rng)


def uniform_boolean_source(
    num_attributes: int, seed: int = 0
) -> SyntheticSource:
    """I.i.d. uniform Boolean attributes — the paper's §3.2.1 example."""
    attrs = [Attribute(f"A{i}", ("0", "1")) for i in range(num_attributes)]
    return SyntheticSource(Schema(attrs), seed=seed)


def skewed_source(
    domain_sizes: Sequence[int],
    exponent: float = 0.8,
    measures: Sequence[str] = (),
    measure_sampler: MeasureSampler | None = None,
    seed: int = 0,
) -> SyntheticSource:
    """A generic skewed categorical source with the given domain sizes."""
    attrs = [
        Attribute(f"A{i}", size) for i, size in enumerate(domain_sizes)
    ]
    schema = Schema(attrs, measures=measures)
    weights = [zipf_weights(size, exponent) for size in domain_sizes]
    return SyntheticSource(
        schema, weights, measure_sampler=measure_sampler, seed=seed
    )
