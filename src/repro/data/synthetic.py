"""Synthetic hidden-database content generators.

A :class:`SyntheticSource` couples a schema with per-attribute value
distributions and a measure sampler.  It can produce a bulk snapshot (to
load a database and fill an insertion pool) and endless fresh tuples (for
schedules that insert more rows than any snapshot holds).

Value sampling is vectorised with numpy; payloads are ``(values, measures)``
pairs that :meth:`repro.hiddendb.database.HiddenDatabase.insert` accepts
directly.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

import numpy as np

from ..errors import SchemaError
from ..hiddendb.schema import Attribute, Schema

#: A tuple payload: categorical values plus measure values.
Payload = tuple[bytes, tuple[float, ...]]

#: Signature of a measure sampler: rng -> measure vector.
MeasureSampler = Callable[[random.Random], tuple[float, ...]]


def zipf_weights(size: int, exponent: float = 0.8) -> np.ndarray:
    """Zipf-like weights over ``size`` values — real catalogs are skewed."""
    ranks = np.arange(1, size + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def uniform_weights(size: int) -> np.ndarray:
    """Uniform weights over ``size`` values."""
    return np.full(size, 1.0 / size)


class SyntheticSource:
    """Generates tuple payloads for a schema.

    Parameters
    ----------
    schema:
        Target schema.
    attr_weights:
        Per-attribute value-probability vectors; ``None`` means uniform on
        every attribute.
    measure_sampler:
        Draws the measure vector for one tuple; ``None`` produces empty
        measures (schema must then declare no measures).
    seed:
        Seed of the source's own generator (bulk sampling); per-call RNGs
        can be supplied for reproducible interleaving with schedules.
    """

    def __init__(
        self,
        schema: Schema,
        attr_weights: Sequence[np.ndarray] | None = None,
        measure_sampler: MeasureSampler | None = None,
        seed: int = 0,
    ):
        self.schema = schema
        if attr_weights is None:
            attr_weights = [uniform_weights(a.size) for a in schema.attributes]
        if len(attr_weights) != schema.num_attributes:
            raise SchemaError("attr_weights length must match attribute count")
        for attribute, weights in zip(schema.attributes, attr_weights):
            if len(weights) != attribute.size:
                raise SchemaError(
                    f"weight vector for {attribute.name!r} has wrong length"
                )
        self.attr_weights = [np.asarray(w, dtype=float) for w in attr_weights]
        if measure_sampler is None and schema.measures:
            raise SchemaError(
                "schema declares measures but no measure_sampler was given"
            )
        self.measure_sampler = measure_sampler
        self._np_rng = np.random.default_rng(seed)
        self._py_rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Bulk generation
    # ------------------------------------------------------------------
    def batch(
        self,
        count: int,
        distinct: bool = True,
        max_attempts: int = 20,
    ) -> list[Payload]:
        """Generate ``count`` payloads, optionally distinct on values.

        The paper assumes all tuples are distinct; with realistic attribute
        counts collisions are vanishingly rare, so rejection sampling
        converges immediately.
        """
        payloads: list[Payload] = []
        seen: set[bytes] = set()
        attempts = 0
        while len(payloads) < count:
            attempts += 1
            if attempts > max_attempts:
                raise SchemaError(
                    f"could not generate {count} distinct value vectors "
                    f"(leaf space too small?)"
                )
            needed = count - len(payloads)
            columns = [
                self._np_rng.choice(len(w), size=needed, p=w)
                for w in self.attr_weights
            ]
            matrix = np.stack(columns, axis=1).astype(np.uint8)
            for row in matrix:
                values = row.tobytes()
                if distinct:
                    if values in seen:
                        continue
                    seen.add(values)
                payloads.append((values, self._sample_measures()))
                if len(payloads) == count:
                    break
        return payloads

    def one(self, rng: random.Random | None = None) -> Payload:
        """Generate a single payload (used by fresh-insert schedules)."""
        rng = rng if rng is not None else self._py_rng
        values = bytes(
            rng.choices(range(len(weights)), weights=weights)[0]
            for weights in self.attr_weights
        )
        return values, self._sample_measures(rng)

    def _sample_measures(
        self, rng: random.Random | None = None
    ) -> tuple[float, ...]:
        if self.measure_sampler is None:
            return ()
        return self.measure_sampler(rng if rng is not None else self._py_rng)


def uniform_boolean_source(
    num_attributes: int, seed: int = 0
) -> SyntheticSource:
    """I.i.d. uniform Boolean attributes — the paper's §3.2.1 example."""
    attrs = [Attribute(f"A{i}", ("0", "1")) for i in range(num_attributes)]
    return SyntheticSource(Schema(attrs), seed=seed)


def skewed_source(
    domain_sizes: Sequence[int],
    exponent: float = 0.8,
    measures: Sequence[str] = (),
    measure_sampler: MeasureSampler | None = None,
    seed: int = 0,
) -> SyntheticSource:
    """A generic skewed categorical source with the given domain sizes."""
    attrs = [
        Attribute(f"A{i}", size) for i, size in enumerate(domain_sizes)
    ]
    schema = Schema(attrs, measures=measures)
    weights = [zipf_weights(size, exponent) for size in domain_sizes]
    return SyntheticSource(
        schema, weights, measure_sampler=measure_sampler, seed=seed
    )
