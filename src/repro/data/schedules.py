"""Update schedules: how the hidden database changes between (or within) rounds.

A schedule's :meth:`~UpdateSchedule.plan` returns a list of *single-mutation
thunks* for the upcoming round.  The round-update model executes them all at
the round boundary; the constant-update model (§5.2) hands the same plan to
an :class:`IntraRoundDriver`, which interleaves the mutations with the
estimator's query traffic — the database then changes in the middle of
algorithm execution, exactly the worst case of the paper's Figure 4.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol, Sequence

from ..hiddendb.database import HiddenDatabase
from .synthetic import Payload, SyntheticSource

#: One mutation: a no-argument callable applying a single insert/delete/update.
Mutation = Callable[[], None]


class UpdateSchedule(Protocol):
    """Anything that can plan one round's worth of mutations."""

    def plan(self, db: HiddenDatabase, rng: random.Random) -> list[Mutation]:
        """Mutations for the next round, in execution order."""
        ...


def apply_round(
    db: HiddenDatabase, schedule: "UpdateSchedule", rng: random.Random
) -> int:
    """Plan and apply a full round of updates; returns the mutation count.

    The whole round is applied inside one :meth:`TupleStore.bulk` block:
    no query runs between the mutations of a round boundary, so index
    maintenance can be deferred and paid once per index for the entire
    churn batch instead of per tuple.  (The intra-round driver, which does
    interleave mutations with queries, applies thunks directly and keeps
    per-mutation maintenance.)
    """
    mutations = schedule.plan(db, rng)
    with db.store.bulk():
        for mutation in mutations:
            mutation()
    return len(mutations)


class NullSchedule:
    """No changes — the static-database extreme of §3.2.1 Example 1."""

    def plan(self, db: HiddenDatabase, rng: random.Random) -> list[Mutation]:
        return []


class SnapshotPoolSchedule:
    """Insert from a finite pool, delete back into it (the Autos workload).

    The paper's default schedule: start with a subset of the snapshot;
    each round insert ``inserts_per_round`` tuples sampled from the held-out
    pool and delete ``delete_fraction`` (or ``deletes_per_round``) of the
    current database, returning deleted payloads to the pool so the content
    universe stays the snapshot.
    """

    def __init__(
        self,
        pool: list[Payload],
        inserts_per_round: int = 0,
        delete_fraction: float = 0.0,
        deletes_per_round: int | None = None,
    ):
        if delete_fraction < 0 or delete_fraction > 1:
            raise ValueError("delete_fraction must be within [0, 1]")
        self.pool = list(pool)
        self.inserts_per_round = inserts_per_round
        self.delete_fraction = delete_fraction
        self.deletes_per_round = deletes_per_round

    def _num_deletes(self, db_size: int) -> int:
        if self.deletes_per_round is not None:
            return min(self.deletes_per_round, db_size)
        return int(round(db_size * self.delete_fraction))

    def plan(self, db: HiddenDatabase, rng: random.Random) -> list[Mutation]:
        mutations: list[Mutation] = []
        num_inserts = min(self.inserts_per_round, len(self.pool))
        for _ in range(num_inserts):
            payload = self.pool.pop(rng.randrange(len(self.pool)))
            values, measures = payload

            def do_insert(v: bytes = values, m: tuple[float, ...] = measures):
                db.insert(v, m)

            mutations.append(do_insert)
        for tid in db.store.random_tids(rng, self._num_deletes(len(db))):

            def do_delete(t: int = tid):
                if t not in db.store:
                    return  # deleted by another schedule in this composite
                deleted = db.delete(t)
                self.pool.append((deleted.values, deleted.measures))

            mutations.append(do_delete)
        rng.shuffle(mutations)
        return mutations


class FreshTupleSchedule:
    """Insert newly generated tuples; delete uniformly at random.

    For workloads whose insert volume exceeds any snapshot (the paper's
    big-change scenarios: +10,000 inserted and 5% deleted per round).
    """

    def __init__(
        self,
        source: SyntheticSource,
        inserts_per_round: int = 0,
        delete_fraction: float = 0.0,
        deletes_per_round: int | None = None,
    ):
        self.source = source
        self.inserts_per_round = inserts_per_round
        self.delete_fraction = delete_fraction
        self.deletes_per_round = deletes_per_round

    def plan(self, db: HiddenDatabase, rng: random.Random) -> list[Mutation]:
        mutations: list[Mutation] = []
        batch_columns = getattr(self.source, "batch_columns", None)
        if self.inserts_per_round and batch_columns is not None:
            # Draw the whole round's fresh content as one columnar batch
            # (seeded from the schedule's rng, see batch_columns); the
            # thunks then insert single pre-drawn rows, so interleaving
            # with query traffic keeps working in intra-round mode.
            fresh = batch_columns(
                self.inserts_per_round, distinct=False, rng=rng
            )
            for values, measures in fresh.payloads():

                def do_insert(
                    v: bytes = values, m: tuple[float, ...] = measures
                ):
                    db.insert(v, m)

                mutations.append(do_insert)
        elif self.inserts_per_round:
            # Duck-typed sources (e.g. the marketplace wrappers) expose
            # only one()/batch(); keep the per-tuple draw for them.
            for _ in range(self.inserts_per_round):

                def do_insert_one():
                    values, measures = self.source.one(rng)
                    db.insert(values, measures)

                mutations.append(do_insert_one)
        if self.deletes_per_round is not None:
            num_deletes = min(self.deletes_per_round, len(db))
        else:
            num_deletes = int(round(len(db) * self.delete_fraction))
        for tid in db.store.random_tids(rng, num_deletes):

            def do_delete(t: int = tid):
                if t in db.store:
                    db.delete(t)

            mutations.append(do_delete)
        rng.shuffle(mutations)
        return mutations


class MeasureDriftSchedule:
    """Re-price a fraction of tuples each round (marketplace dynamics).

    ``updater(t, rng, round_index)`` returns the tuple's new measure vector.
    Selection can be restricted with ``selector`` (e.g. only BID listings).
    """

    def __init__(
        self,
        fraction: float,
        updater: Callable[..., tuple[float, ...]],
        selector: Callable[..., bool] | None = None,
    ):
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be within [0, 1]")
        self.fraction = fraction
        self.updater = updater
        self.selector = selector

    def plan(self, db: HiddenDatabase, rng: random.Random) -> list[Mutation]:
        round_index = db.current_round + 1
        candidates = [
            t.tid
            for t in db.tuples()
            if self.selector is None or self.selector(t)
        ]
        count = int(round(len(candidates) * self.fraction))
        mutations: list[Mutation] = []
        for tid in (
            rng.sample(candidates, count) if count < len(candidates)
            else candidates
        ):

            def do_update(t: int = tid):
                if t not in db.store:
                    return  # deleted by another schedule in this composite
                current = db.store.get(t)
                db.update_measures(
                    t, self.updater(current, rng, round_index)
                )

            mutations.append(do_update)
        return mutations


class CompositeSchedule:
    """Run several schedules' plans back to back each round."""

    def __init__(self, schedules: Sequence[UpdateSchedule]):
        self.schedules = tuple(schedules)

    def plan(self, db: HiddenDatabase, rng: random.Random) -> list[Mutation]:
        mutations: list[Mutation] = []
        for schedule in self.schedules:
            mutations.extend(schedule.plan(db, rng))
        return mutations


class IntraRoundDriver:
    """Spread a round's mutations across the round's query traffic (§5.2).

    Attach :attr:`on_query` as the session's per-query hook; after each
    charged query the driver applies the proportional share of the round's
    planned mutations.  Mutations left over at the end of the round (e.g.
    because the estimator under-spent its budget) are flushed by
    :meth:`finish_round`.
    """

    def __init__(
        self,
        db: HiddenDatabase,
        schedule: UpdateSchedule,
        queries_per_round: int,
        rng: random.Random,
    ):
        if queries_per_round < 1:
            raise ValueError("queries_per_round must be positive")
        self.db = db
        self.schedule = schedule
        self.queries_per_round = queries_per_round
        self.rng = rng
        self._pending: list[Mutation] = []
        self._planned = 0
        self._queries_seen = 0

    def start_round(self) -> None:
        """Plan the upcoming round's mutations; apply none yet."""
        self._pending = self.schedule.plan(self.db, self.rng)
        self._planned = len(self._pending)
        self._queries_seen = 0

    def on_query(self) -> None:
        """Session hook: apply mutations due at this point of the round."""
        self._queries_seen += 1
        due = min(
            self._planned,
            int(round(self._planned * self._queries_seen / self.queries_per_round)),
        )
        applied = self._planned - len(self._pending)
        while applied < due and self._pending:
            self._pending.pop(0)()
            applied += 1

    def finish_round(self) -> None:
        """Flush mutations the query traffic did not reach."""
        while self._pending:
            self._pending.pop(0)()
