"""One config object for every engine knob.

Before :mod:`repro.api`, the knobs of a simulation were threaded ad hoc:
``backend=`` kwargs, a process-global data-plane switch, an interface
``k`` here, a ``budget_per_round`` there, and environment variables
(``REPRO_DATA_PLANE``, the benchmarks' ``REPRO_BENCH_BACKEND``) that could
silently override program decisions.  :class:`EngineConfig` consolidates
them with one documented precedence order, highest first:

1. **Explicit config field** — a non-``None`` value on the
   :class:`EngineConfig` an :class:`~repro.api.engine.Engine` was built
   with (or a per-task override on an
   :class:`~repro.api.engine.EstimationTask`).
2. **Process-wide programmatic default** — ``set_default_backend`` /
   ``set_data_plane`` (or their scoped ``using_*`` twins).
3. **Environment variable** — ``REPRO_DATA_PLANE`` for the data plane,
   ``REPRO_OBS`` for the observability plane.  Environment variables are
   *defaults only*: they never override levels 1–2 (see
   ``tests/test_data_plane_precedence.py``).
4. **Built-in default** — ``blocked`` storage, ``vectorized`` data plane.

``REPRO_BENCH_BACKEND`` remains a benchmarks-harness convenience (it calls
``set_default_backend`` at level 2) and is not consulted by the library.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from typing import Iterator
from zlib import crc32

from ..errors import ExperimentError, SchemaError
from ..hiddendb.backends import (
    DEFAULT_BLOCK_SIZE,
    get_default_backend,
    resolve_backend,
    using_backend,
    using_backend_options,
)
from ..hiddendb.store import (
    DATA_PLANES,
    get_data_plane,
    overriding_data_plane,
)
from ..obs import get_default_observability, using_observability

#: How per-task estimator seeds derive from :attr:`EngineConfig.seed` when
#: a task does not pin one explicitly.
SEED_POLICIES = ("per-task", "shared")

#: Executors ``run_round`` can fan active tasks out to when
#: ``parallelism > 1``: worker threads sharing the process (default), or
#: forked worker processes handing estimator state back over the strict-JSON
#: wire seam (POSIX fork platforms only).
ROUND_EXECUTORS = ("thread", "fork")

#: Process-wide default round parallelism (level 2 of the precedence
#: order); configs with ``parallelism=None`` resolve against it.
_default_parallelism = 1


def get_default_parallelism() -> int:
    """The worker count engines use when their config does not pin one."""
    return _default_parallelism


def set_default_parallelism(workers: int) -> int:
    """Set the process-wide default parallelism; returns the previous."""
    global _default_parallelism
    if workers < 1:
        raise ExperimentError("parallelism must be at least 1")
    previous = _default_parallelism
    _default_parallelism = workers
    return previous


@contextmanager
def using_parallelism(workers: int | None) -> Iterator[int]:
    """Scope the default parallelism (``None`` leaves it untouched)."""
    if workers is None:
        yield get_default_parallelism()
        return
    previous = set_default_parallelism(workers)
    try:
        yield workers
    finally:
        set_default_parallelism(previous)


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Every knob of an estimation engine, in one JSON-serializable object.

    Parameters
    ----------
    backend:
        Storage backend behind every prefix index of the engine's
        database.  ``None`` defers to the process default
        (``set_default_backend``, built-in ``"blocked"``).
    data_plane:
        ``"vectorized"`` or ``"scalar"``; scoped around every engine
        operation.  ``None`` defers to the process default
        (``set_data_plane`` > ``REPRO_DATA_PLANE`` > ``"vectorized"``).
    k:
        Page size of the hidden database's top-k interface.
    budget_per_round:
        Default per-round query budget ``G`` a task receives when it does
        not pin its own ``budget`` or ``budget_share``.
    seed:
        Base seed of the engine's seed policy.
    seed_policy:
        ``"per-task"`` (default): each task's estimator seed is derived
        from ``seed`` and the task *name* (stable across runs and
        submission order).  ``"shared"``: every task uses ``seed``
        verbatim.  A task's explicit ``seed`` always wins.
    block_size:
        Storage-engine block/buffer tuning knob, threaded to the backend.
    shards:
        Shard count of the ``sharded`` storage backend (``None`` = the
        backend's default).  Only meaningful when the engine's database
        resolves to the sharded engine; setting it alongside an explicit
        non-sharded ``backend`` raises.
    parallelism:
        Worker threads :meth:`~repro.api.Engine.run_round` fans active
        tasks out to (and, on a sharded database, the per-shard bulk
        dispatch width).  ``1`` = sequential; results are bit-identical
        either way.  ``None`` defers to the process default
        (:func:`set_default_parallelism`, built-in ``1``).
    overlap:
        Enable the HTAP epoch split: ``advance_round`` publishes an
        immutable :class:`~repro.hiddendb.epoch.StoreEpoch` and
        ``run_round`` pins every estimator to it, so ``apply_updates``
        churn for the *next* round can run concurrently with this round's
        queries instead of serializing behind the round barrier.
        Estimates are bit-identical to sequential mode; the only
        behavioral difference is visibility — mutations reach estimators
        at the next publish flip rather than immediately.  Incompatible
        with tasks that install ``on_query`` hooks (the intra-round
        update model needs read-your-writes).
    round_executor:
        ``"thread"`` (default): round workers are threads.  ``"fork"``:
        with ``parallelism > 1``, each active task runs in a forked
        worker process against the fork-time copy-on-write snapshot and
        hands its report + estimator state back over the
        :mod:`repro.core.wire` strict-JSON seam.  Requires a platform
        with ``fork`` (raises at round time otherwise); results remain
        bit-identical.
    report_log_limit:
        Upper bound on retained reports: both the engine's execution-order
        log (drained by ``stream_reports()``) and each task's history on
        :class:`~repro.api.TaskHandle` drop their oldest entries past it.
        Budget accounting stays exact regardless (``budget_ledger()``
        reads O(1) counters).  ``None`` (default) keeps every report —
        bound it in long-running services.
    store_dir:
        Durable store directory (see :mod:`repro.api.persistence` and
        ``docs/format.md``).  ``Engine.save()`` defaults to it, and a
        ``mapped`` database lays its scratch run files under
        ``<store_dir>/runs`` instead of the system temp dir, so one
        directory holds everything the deployment writes.  ``None``
        (default) = no durable directory; snapshots then need an explicit
        path.
    observability:
        Enable the :mod:`repro.obs` metrics/tracing plane for engines
        built with this config (see ``docs/observability.md``).  ``None``
        defers to the process default
        (:func:`repro.obs.set_default_observability` > ``REPRO_OBS`` env
        var > off).  Estimates are bit-identical either way; enabling is
        engine-wide (the registry is process-global) and an engine never
        *disables* a registry another engine enabled.
    auto:
        Enable cost-based self-tuning (:mod:`repro.tuning`, see
        ``docs/tuning.md``): the engine picks backend / shard count /
        parallelism from a cost model at construction and re-evaluates at
        every ``advance_round``, migrating the store's indexes online at
        the epoch-publish seam when the observed profile shifts.
        Explicitly set fields (``backend``, ``shards``, ``parallelism``)
        act as pins the tuner never overrides — the per-knob opt-out.
        Estimates are bit-identical with tuning on or off; only wall
        time changes.
    """

    backend: str | None = None
    data_plane: str | None = None
    k: int = 100
    budget_per_round: int = 300
    seed: int = 0
    seed_policy: str = "per-task"
    block_size: int = DEFAULT_BLOCK_SIZE
    shards: int | None = None
    parallelism: int | None = None
    overlap: bool = False
    round_executor: str = "thread"
    report_log_limit: int | None = None
    store_dir: str | None = None
    observability: bool | None = None
    auto: bool = False

    def __post_init__(self) -> None:
        if self.observability is not None and not isinstance(
            self.observability, bool
        ):
            raise ExperimentError("observability must be a bool or None")
        if not isinstance(self.auto, bool):
            raise ExperimentError("auto must be a bool")
        if self.k < 1:
            raise ExperimentError("k must be at least 1")
        if self.budget_per_round < 1:
            raise ExperimentError("budget_per_round must be positive")
        if self.block_size < 2:
            raise ExperimentError("block_size must be at least 2")
        if self.shards is not None:
            if self.shards < 1:
                raise ExperimentError("shards must be at least 1")
            if self.backend is not None and self.backend != "sharded":
                raise ExperimentError(
                    "shards only applies to the 'sharded' backend, got "
                    f"backend={self.backend!r}"
                )
        if self.parallelism is not None and self.parallelism < 1:
            raise ExperimentError("parallelism must be at least 1")
        if self.report_log_limit is not None and self.report_log_limit < 1:
            raise ExperimentError("report_log_limit must be positive")
        if self.round_executor not in ROUND_EXECUTORS:
            raise ExperimentError(
                f"unknown round executor {self.round_executor!r}; "
                f"available: {', '.join(ROUND_EXECUTORS)}"
            )
        if self.seed_policy not in SEED_POLICIES:
            raise ExperimentError(
                f"unknown seed policy {self.seed_policy!r}; "
                f"available: {', '.join(SEED_POLICIES)}"
            )
        if self.data_plane is not None and self.data_plane not in DATA_PLANES:
            raise ExperimentError(
                f"unknown data plane {self.data_plane!r}; "
                f"available: {', '.join(DATA_PLANES)}"
            )
        if self.backend is not None:
            try:
                resolve_backend(self.backend)
            except SchemaError as exc:
                # One exception surface for every bad config field.
                raise ExperimentError(str(exc)) from None

    # ------------------------------------------------------------------
    # Resolution against the process-wide defaults (precedence levels 2-4)
    # ------------------------------------------------------------------
    def resolved_backend(self) -> str:
        """The backend this config selects, after the precedence order."""
        return self.backend if self.backend is not None else (
            get_default_backend()
        )

    def resolved_data_plane(self) -> str:
        """The data plane this config selects, after the precedence order."""
        return self.data_plane if self.data_plane is not None else (
            get_data_plane()
        )

    def resolved_parallelism(self) -> int:
        """The round parallelism, after the precedence order."""
        return self.parallelism if self.parallelism is not None else (
            get_default_parallelism()
        )

    def resolved_observability(self) -> bool:
        """Whether this config enables the observability plane, after the
        precedence order (explicit field > ``set_default_observability``
        > ``REPRO_OBS`` > off)."""
        return self.observability if self.observability is not None else (
            get_default_observability()
        )

    def backend_factory_options(self) -> dict:
        """The backend-specific factory options this config implies.

        The sharded engine takes its shard count and — so multi-core
        engines parallelize shard maintenance with the same knob that
        parallelizes their rounds — the bulk-dispatch worker width.  The
        mapped engine takes the directory its scratch run files live in:
        ``<store_dir>/runs`` when this config pins a ``store_dir``, so a
        durable deployment keeps every file it writes under one root.
        Raises rather than silently dropping ``shards`` when the
        *resolved* backend is not sharded (``__post_init__`` can only
        check an explicit ``backend`` field; the process default is known
        here, at engine build time).
        """
        resolved = self.resolved_backend()
        if resolved != "sharded":
            if self.shards is not None:
                raise ExperimentError(
                    f"shards={self.shards} requires the 'sharded' "
                    f"backend, but this engine resolves to "
                    f"{self.resolved_backend()!r}"
                )
            if resolved == "mapped" and self.store_dir is not None:
                return {"path": os.path.join(self.store_dir, "runs")}
            return {}
        options: dict = {}
        if self.shards is not None:
            options["shards"] = self.shards
        workers = self.resolved_parallelism()
        if workers > 1:
            options["workers"] = workers
        return options

    @contextmanager
    def apply(self) -> Iterator["EngineConfig"]:
        """Scope the active defaults to this config's explicit choices.

        ``None`` fields leave the corresponding default untouched, so
        wrapping legacy code in ``config.apply()`` is always safe.  A
        non-``None`` ``data_plane`` becomes a context-local override
        (:func:`~repro.hiddendb.store.overriding_data_plane`): it governs
        everything run inside the scope on this thread and is invisible
        to concurrent threads — no process-global state is mutated.  A
        non-``None`` ``shards`` scopes the sharded engine's default
        options; a non-``None`` ``parallelism`` scopes the process
        default engines resolve against.
        """
        shard_options = (
            {"shards": self.shards} if self.shards is not None else None
        )
        with using_backend(self.backend), overriding_data_plane(
            self.data_plane
        ), using_backend_options("sharded", shard_options), using_parallelism(
            self.parallelism
        ), using_observability(self.observability):
            yield self

    def task_seed(self, task_name: str, explicit: int | None = None) -> int:
        """The estimator seed for a named task under the seed policy."""
        if explicit is not None:
            return explicit
        if self.seed_policy == "shared":
            return self.seed
        # Stable, submission-order-independent derivation: the same
        # (config seed, task name) pair always yields the same stream.
        return self.seed + (crc32(task_name.encode("utf-8")) % 1_000_003)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "EngineConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """A strict-JSON-safe payload (with ``schema_version``);
        :meth:`from_dict` round-trips it."""
        from ..core.wire import stamp

        return stamp(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Forward tolerant (the wire versioning policy of
        :mod:`repro.core.wire`): unknown keys — fields added by a newer
        producer, plus ``schema_version`` itself — are ignored, and a
        payload without a version is read as the pre-versioning v0 form.
        Known fields still validate through ``__post_init__``, so
        tolerance never admits an invalid config.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{
            key: value for key, value in payload.items() if key in known
        })
