"""Atomic epoch snapshots: save a live engine, restore it bit-identically.

The durability layer of the ``mapped`` storage tier (and of every other
backend — snapshots are backend-agnostic).  A *store directory* holds at
most one committed snapshot::

    <store>/MANIFEST.json        # the commit point (atomic rename target)
    <store>/epoch-<N>/           # the committed epoch's payload
        state.json               # config, schema, tasks, RNGs, histories
        block-00000.values.u8    # one file per heap-block column
        block-00000.measures.f64
        block-00000.tids.i64
        block-00000.scores.f64
        block-00000.alive.u8
        ...
    <store>/runs/                # mapped-backend scratch (never snapshot)

The write protocol (normative spec: ``docs/format.md``) is
write-new-then-rename: a fresh ``epoch-<N+1>/`` directory is fully written
and fsynced *before* ``MANIFEST.json`` is atomically replaced to point at
it, so a crash at any instant leaves either the previous committed
snapshot or the new one — never a torn mixture.  A reader only ever
follows the manifest; epoch directories without a committed manifest entry
are invisible garbage (pruned by the next successful save).

Restore is exact: :func:`load_engine` rebuilds the heap's block structure
(per-block batches and liveness masks, not a compaction — ``random_tids``
and batch routing depend on the exact segmentation), the per-task
estimator RNG streams, drill-down records, report histories, budget
ledgers, and the ranking policy's RNG, so the next ``run_round()`` on the
restored engine is bit-identical to the run the snapshot interrupted.
Block columns are mapped copy-on-write (``mmap`` mode ``"c"``): restored
engines read directly from the snapshot files, and in-place measure
updates (``store.replace``) stay private to the process — the committed
epoch is immutable once written.

What cannot be snapshot raises instead of silently dropping state: tasks
whose estimator is a non-registry callable, estimators carrying an
``on_query`` hook or an attached archive, rankings or spec selections that
are custom callables.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import shutil
from typing import Mapping

import numpy as np

from ..core.wire import decode_float, encode_float, stamp, wire_version
from ..errors import ExperimentError, WireFormatError
from ..hiddendb.database import HiddenDatabase
from ..hiddendb.ranking import MeasureScore, RandomScore, RecencyScore
from ..hiddendb.schema import Attribute, Schema
from ..hiddendb.store import _HeapBlock
from ..hiddendb.tuples import HiddenTuple, TupleBatch
from .config import EngineConfig

#: On-disk snapshot format version (independent of the wire
#: ``schema_version`` each JSON payload also carries).  Bumped only for
#: layout changes a version-1 reader cannot tolerate.
FORMAT_VERSION = 1

#: File name of the commit point inside a store directory.
MANIFEST_NAME = "MANIFEST.json"

_EPOCH_DIR = re.compile(r"^epoch-(\d+)$")

#: ``(suffix, little-endian dtype)`` of the per-block column files, in
#: the order ``docs/format.md`` lists them.
_BLOCK_COLUMNS = (
    ("values.u8", "<u1"),
    ("measures.f64", "<f8"),
    ("tids.i64", "<i8"),
    ("scores.f64", "<f8"),
    ("alive.u8", "<u1"),
)


# ----------------------------------------------------------------------
# fsync discipline
# ----------------------------------------------------------------------
def _write_file(path: str, data: bytes) -> None:
    """Write ``data`` and force it to stable storage before returning."""
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _fsync_dir(path: str) -> None:
    """Force a directory entry update to stable storage (POSIX; platforms
    that cannot open directories skip silently — the rename itself is
    still atomic there)."""
    with contextlib.suppress(OSError):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


# ----------------------------------------------------------------------
# Ranking policies over the wire
# ----------------------------------------------------------------------
def _ranking_to_wire(policy) -> dict:
    """The JSON description that rebuilds a stock ranking policy exactly
    (including the Mersenne stream position of :class:`RandomScore`)."""
    kind = type(policy)
    if kind is RandomScore:
        version, internal, gauss = policy._rng.getstate()
        return {
            "kind": "random",
            "rng": [
                int(version),
                [int(word) for word in internal],
                None if gauss is None else encode_float(float(gauss)),
            ],
        }
    if kind is MeasureScore:
        return {
            "kind": "measure",
            "measure": policy.measure,
            "descending": bool(policy.descending),
        }
    if kind is RecencyScore:
        return {"kind": "recency"}
    raise ExperimentError(
        f"ranking policy {policy!r} cannot be snapshot; only the stock "
        "RandomScore/MeasureScore/RecencyScore policies serialize"
    )


def _ranking_from_wire(payload: Mapping):
    kind = payload.get("kind")
    if kind == "random":
        policy = RandomScore()
        version, internal, gauss = payload["rng"]
        policy._rng.setstate((
            int(version),
            tuple(int(word) for word in internal),
            None if gauss is None else decode_float(gauss),
        ))
        return policy
    if kind == "measure":
        return MeasureScore(
            payload["measure"], descending=bool(payload["descending"])
        )
    if kind == "recency":
        return RecencyScore()
    raise WireFormatError(f"unknown ranking kind {kind!r}")


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def _existing_epochs(path: str) -> list[int]:
    try:
        entries = os.listdir(path)
    except FileNotFoundError:
        return []
    epochs = []
    for entry in entries:
        match = _EPOCH_DIR.match(entry)
        if match is not None:
            epochs.append(int(match.group(1)))
    return epochs


def _task_state(engine, name: str, handle) -> dict:
    """One task's full wire state (request + estimator + handle counters)."""
    from ..service.protocol import specs_to_wire

    task = handle.task
    if not isinstance(task.estimator, str):
        raise ExperimentError(
            f"task {name!r} cannot be snapshot: its estimator is a custom "
            "factory callable, not a registry name"
        )
    return {
        "request": {
            "name": task.name,
            "estimator": task.estimator,
            "specs": specs_to_wire(task.specs),
            "budget": task.budget,
            "budget_share": task.budget_share,
            "seed": task.seed,
            "options": dict(task.options),
        },
        "estimator": handle.estimator.state_to_wire(),
        "handle": {
            "budget_per_round": handle.budget_per_round,
            "rounds_run": handle.rounds_run,
            "queries_total": handle.queries_total,
        },
    }


def _engine_state(engine, extra) -> dict:
    """The ``state.json`` payload, minus the block column files."""
    store = engine.db.store
    return stamp({
        "format": FORMAT_VERSION,
        "config": engine.config.to_dict(),
        "backend": engine.db.backend,
        "schema": {
            "attributes": [
                {"name": a.name, "values": list(a.values)}
                for a in engine.db.schema.attributes
            ],
            "measures": list(engine.db.schema.measures),
        },
        "ranking": _ranking_to_wire(engine.db.ranking),
        "db": {
            "round": engine.db._round,
            "next_tid": engine.db._next_tid,
        },
        "store": {
            "block_size": store._block_size,
            "backend_options": dict(store.backend_options),
            "epoch": store._epoch,
            "blocks": [
                {"rows": len(block.batch), "alive": block.alive_count}
                for block in store._blocks
            ],
            "dict_tuples": [
                {
                    "tid": t.tid,
                    "values": list(t.values),
                    "measures": [encode_float(m) for m in t.measures],
                    "score": encode_float(t.score),
                }
                for t in store._tuples.values()
            ],
            "index_orders": [list(order) for order in store.index_orders()],
        },
        "tasks": [
            _task_state(engine, name, handle)
            for name, handle in engine._tasks.items()
        ],
        "log": {
            "start": engine._log_start,
            "entries": [
                [name, report.to_dict()] for name, report in engine._log
            ],
        },
        "extra": extra,
    })


def write_epoch(engine, path: str, extra=None) -> dict:
    """Write (but do NOT commit) a fresh epoch directory; returns the
    manifest payload that would commit it.

    Everything under ``epoch-<N>/`` is fully written and fsynced when this
    returns, but :func:`load_engine` still resolves the *previous*
    snapshot until :func:`commit_manifest` publishes the returned payload
    — this split is exactly the crash window the torn-snapshot tests
    exercise.  Callers hold the engine's locks via :meth:`Engine.save`.
    """
    os.makedirs(path, exist_ok=True)
    manifest = _read_manifest(path)
    epoch = max(
        _existing_epochs(path) + (
            [manifest["epoch"]] if manifest is not None else []
        ),
        default=-1,
    ) + 1
    directory = f"epoch-{epoch}"
    epoch_path = os.path.join(path, directory)
    os.makedirs(epoch_path, exist_ok=True)
    state = _engine_state(engine, extra)
    for position, block in enumerate(engine.db.store._blocks):
        batch = block.batch
        columns = (
            batch.values, batch.measures, batch.tids, batch.scores,
            block.alive,
        )
        for (suffix, dtype), column in zip(_BLOCK_COLUMNS, columns):
            _write_file(
                os.path.join(epoch_path, f"block-{position:05d}.{suffix}"),
                np.ascontiguousarray(column, dtype=dtype).tobytes(),
            )
    try:
        encoded = json.dumps(
            state, allow_nan=False, separators=(",", ":"), sort_keys=True
        )
    except (TypeError, ValueError) as exc:
        raise ExperimentError(
            f"engine state is not JSON-expressible ({exc}); task options "
            "must hold only JSON values to be snapshot"
        ) from None
    _write_file(os.path.join(epoch_path, "state.json"), encoded.encode())
    _fsync_dir(epoch_path)
    _fsync_dir(path)
    return stamp({
        "format": FORMAT_VERSION,
        "epoch": epoch,
        "directory": directory,
        "round": engine.db._round,
        "blocks": len(engine.db.store._blocks),
        "tuples": len(engine.db.store),
    })


def commit_manifest(path: str, manifest: Mapping) -> None:
    """Atomically publish a manifest: the snapshot commit point.

    ``MANIFEST.json`` is replaced via write-temp + ``os.replace`` +
    directory fsync, so readers observe either the old manifest or the
    new one in full — never a partial write.
    """
    tmp = os.path.join(path, MANIFEST_NAME + ".tmp")
    _write_file(
        tmp,
        json.dumps(
            dict(manifest), allow_nan=False, separators=(",", ":"),
            sort_keys=True,
        ).encode(),
    )
    os.replace(tmp, os.path.join(path, MANIFEST_NAME))
    _fsync_dir(path)


def _prune_epochs(path: str, keep: str) -> None:
    """Drop every uncommitted/superseded epoch directory except ``keep``."""
    for entry in os.listdir(path):
        if _EPOCH_DIR.match(entry) and entry != keep:
            shutil.rmtree(os.path.join(path, entry), ignore_errors=True)
    with contextlib.suppress(OSError):
        os.remove(os.path.join(path, MANIFEST_NAME + ".tmp"))


def save_engine(engine, path: str, extra=None) -> dict:
    """Snapshot an engine into a store directory; returns the manifest.

    ``extra`` rides along verbatim (JSON values only) and comes back from
    :func:`load_engine` — the service plane stores its governor state
    there.  The previous committed snapshot stays valid until the new one
    commits; superseded epochs are pruned afterwards.
    """
    manifest = write_epoch(engine, path, extra)
    commit_manifest(path, manifest)
    _prune_epochs(path, keep=manifest["directory"])
    return manifest


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def _read_manifest(path: str) -> dict | None:
    """The committed manifest, or ``None`` when no snapshot committed yet
    (missing or empty/torn manifest files count as absent — the atomic
    rename protocol means a real commit is never partial)."""
    try:
        with open(os.path.join(path, MANIFEST_NAME), "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    if not raw:
        return None
    try:
        manifest = json.loads(raw)
    except ValueError:
        raise WireFormatError(
            f"corrupt snapshot manifest in {path!r}"
        ) from None
    if not isinstance(manifest, dict):
        raise WireFormatError(f"corrupt snapshot manifest in {path!r}")
    return manifest


def has_snapshot(path: str) -> bool:
    """True when ``path`` holds a committed snapshot to restore from."""
    return _read_manifest(path) is not None


def _map_column(path: str, dtype: str, shape: tuple) -> np.ndarray:
    """A copy-on-write mapping of one snapshot column file.

    Mode ``"c"``: reads come straight from the snapshot file, in-place
    measure/score updates stay private pages, and the committed epoch is
    never dirtied.  Zero-size columns (a schema without measures writes
    empty files, which ``mmap`` refuses) come back as empty arrays.
    """
    if 0 in shape:
        return np.zeros(shape, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="c", shape=shape)


def _restore_store(store, state: Mapping, epoch_path: str) -> None:
    """Rebuild the heap exactly: same block segmentation, same liveness
    masks, same dict remainder, same mutation epoch."""
    num_measures = len(store.schema.measures)
    num_attributes = store.schema.num_attributes
    for position, meta in enumerate(state["blocks"]):
        rows = int(meta["rows"])
        prefix = os.path.join(epoch_path, f"block-{position:05d}")
        values = _map_column(
            f"{prefix}.values.u8", "<u1", (rows, num_attributes)
        )
        measures = _map_column(
            f"{prefix}.measures.f64", "<f8", (rows, num_measures)
        )
        tids = _map_column(f"{prefix}.tids.i64", "<i8", (rows,))
        scores = _map_column(f"{prefix}.scores.f64", "<f8", (rows,))
        alive = np.fromfile(f"{prefix}.alive.u8", dtype="<u1").astype(bool)
        if len(alive) != rows:
            raise WireFormatError(
                f"snapshot block {position} is torn: {len(alive)} alive "
                f"flags for {rows} rows"
            )
        block = _HeapBlock(TupleBatch(values, measures, tids, scores))
        block.alive = alive
        block.alive_count = int(meta["alive"])
        if block.alive_count != int(np.count_nonzero(alive)):
            raise WireFormatError(
                f"snapshot block {position} liveness mismatch"
            )
        store._blocks.append(block)
        store._block_los.append(block.tid_lo)
    for entry in state["dict_tuples"]:
        t = HiddenTuple(
            int(entry["tid"]),
            bytes(entry["values"]),
            tuple(decode_float(m) for m in entry["measures"]),
            decode_float(entry["score"]),
        )
        store._tuples[t.tid] = t
    store._size = sum(b.alive_count for b in store._blocks) + len(
        store._tuples
    )
    store._epoch = int(state["epoch"])


def load_engine(path: str):
    """Restore ``(engine, extra)`` from the committed snapshot in ``path``.

    The restored engine resumes bit-identically: same estimates, same RNG
    stream positions, same report histories and ledgers as the engine
    :func:`save_engine` captured.  Prefix indexes are rebuilt from the
    restored heap (their *contents* are a pure function of the live
    tuples; estimators only observe query results, so rebuild equals
    recovery).  Raises :class:`~repro.errors.ExperimentError` when no
    snapshot has ever committed at ``path``.
    """
    from ..core.estimators.base import RoundReport
    from ..service.protocol import specs_from_wire
    from .engine import Engine, EstimationTask

    manifest = _read_manifest(path)
    if manifest is None:
        raise ExperimentError(f"no committed snapshot in {path!r}")
    if int(manifest.get("format", 0)) > FORMAT_VERSION:
        raise WireFormatError(
            f"snapshot format {manifest.get('format')} is newer than this "
            f"reader (supports up to {FORMAT_VERSION})"
        )
    epoch_path = os.path.join(path, manifest["directory"])
    with open(os.path.join(epoch_path, "state.json"), "rb") as handle:
        state = json.loads(handle.read())
    wire_version(state)  # malformed version markers fail loudly
    config = EngineConfig.from_dict(state["config"])
    schema = Schema(
        [
            Attribute(entry["name"], entry["values"])
            for entry in state["schema"]["attributes"]
        ],
        measures=state["schema"]["measures"],
    )
    db = HiddenDatabase(
        schema,
        ranking=_ranking_from_wire(state["ranking"]),
        block_size=state["store"]["block_size"],
        backend=state["backend"],
        backend_options=state["store"]["backend_options"],
    )
    _restore_store(db.store, state["store"], epoch_path)
    db._round = int(state["db"]["round"])
    db._next_tid = int(state["db"]["next_tid"])
    engine = Engine(config, db=db)
    # Index orders registered before the crash are rebuilt eagerly so the
    # first restored round pays no surprise backfill.
    for order in state["store"]["index_orders"]:
        db.store.ensure_index(tuple(order))
    for entry in state["tasks"]:
        request = entry["request"]
        task = EstimationTask(
            request["name"],
            specs_from_wire(schema, request["specs"]),
            estimator=request["estimator"],
            budget=request["budget"],
            budget_share=request["budget_share"],
            seed=request["seed"],
            options=request["options"],
        )
        handle = engine.submit(task)
        handle.estimator.restore_state(entry["estimator"])
        counters = entry["handle"]
        handle.budget_per_round = int(counters["budget_per_round"])
        handle.rounds_run = int(counters["rounds_run"])
        handle.queries_total = int(counters["queries_total"])
        history = handle.estimator.history
        limit = handle._history_limit
        handle._reports = list(
            history if limit is None else history[-limit:]
        )
    engine._log = [
        (name, RoundReport.from_dict(payload))
        for name, payload in state["log"]["entries"]
    ]
    engine._log_start = int(state["log"]["start"])
    return engine, state.get("extra")
