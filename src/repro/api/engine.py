"""The engine facade: one hidden database, many estimation tenants.

The paper's setting is inherently multi-tenant — many analysts track their
own aggregates over one dynamic hidden database, each through their own
budgeted connection to the same top-k interface.  :class:`Engine` is that
service boundary:

* it owns the :class:`~repro.hiddendb.database.HiddenDatabase` and builds
  one :class:`~repro.hiddendb.interface.TopKInterface` per tenant (budget
  and query counters are per-tenant, the store is shared);
* tenants are named :class:`EstimationTask`\\ s — an estimator (resolved
  through the registry), the aggregates it tracks, and its budget share;
* the lifecycle is ``submit()`` → ``run_round()`` (every active task runs
  its round over the shared store) → ``apply_updates()`` /
  ``advance_round()`` → repeat, with ``stream_reports()`` draining the
  report log;
* three locks serialize the boundary: the *session lock* guards the task
  table and report log (``submit`` / ``cancel`` / ``stream_reports`` /
  ``budget_ledger`` — always short critical sections); the *round
  barrier* guards round execution (``run_round``); and the *write lock*
  guards store mutation (``apply_updates`` / ``load`` /
  ``advance_round``).  Sequentially (the default) writers take the round
  barrier too, so the store is round-static exactly as the paper's round
  model requires.  With ``EngineConfig(overlap=True)`` writers take only
  the write lock: ``run_round`` pins every estimator to the published
  :class:`~repro.hiddendb.epoch.StoreEpoch` (an immutable snapshot
  flipped in atomically by ``advance_round``), so round-boundary churn
  for round ``i+1`` overlaps round ``i``'s queries — the HTAP split.
  Estimates stay bit-identical; only *visibility* changes (mutations
  reach estimators at the next publish flip);
* within a round, tasks run over the round-static store (or the pinned
  epoch) — sequentially in submission order, or fanned out to a worker
  pool (``run_round(parallel=N)`` / ``EngineConfig.parallelism``), as
  threads or — ``EngineConfig(round_executor="fork")`` — as forked
  worker processes that hand their report + estimator state back over
  the :mod:`repro.core.wire` strict-JSON seam.  Each task owns its RNG,
  its interface counters, and its session, and the store is
  read-concurrent (see :class:`~repro.hiddendb.store.TupleStore`), so
  every schedule is bit-identical to the sequential one; reports are
  merged in deterministic submission order either way (see
  ``tests/test_engine_concurrency.py``).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator, Mapping, Sequence

from ..core.aggregates import AnySpec
from ..core.estimators.base import RoundReport
from ..core.estimators.registry import EstimatorFactory, resolve_estimator
from ..errors import (
    DuplicateTaskError,
    ExperimentError,
    UnknownTaskError,
    error_from_wire,
    wire_error,
)
from ..hiddendb.database import HiddenDatabase, reading_epoch
from ..hiddendb.epoch import StoreEpoch
from ..hiddendb.interface import TopKInterface
from ..hiddendb.ranking import RankingPolicy
from ..hiddendb.schema import Schema
from ..hiddendb.store import get_data_plane, overriding_data_plane
from ..obs import OBS
from ..tuning import (
    ACTION_MIGRATE,
    Candidate,
    TuningController,
    WorkloadProfile,
)
from .config import EngineConfig

#: Task-name slot of the truncation markers ``stream_reports()`` yields
#: when ``report_log_limit`` eviction opened a gap in the replayed log.
GAP_TASK = "__gap__"

# Import-time observability handles (see repro.obs); per-task handles are
# created once per submit and cached on the TaskHandle.
_ROUNDS_TOTAL = OBS.counter("repro_rounds_total")
_ROUND_SECONDS = OBS.histogram("repro_round_seconds")
_WORKER_UTILIZATION = OBS.gauge("repro_worker_utilization")


@dataclasses.dataclass(frozen=True)
class ReportGap:
    """A truncation marker in the report stream: ``dropped`` reports were
    evicted (``report_log_limit``) between the previous yielded entry and
    the next one — the log is *not* contiguous across this marker."""

    dropped: int



def _describable(value):
    """``value`` if JSON can express it, else its repr (description only)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_describable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _describable(item) for key, item in value.items()}
    return repr(value)


class EstimationTask:
    """One tenant's estimation assignment.

    Parameters
    ----------
    name:
        Unique handle of the task within its engine.
    specs:
        The aggregates this tenant tracks.
    estimator:
        Registry name (``"RESTART"`` / ``"REISSUE"`` / ``"RS"`` / anything
        registered via :func:`~repro.core.estimators.registry
        .register_estimator`) or a factory callable.
    budget:
        Absolute per-round query budget; overrides the engine default.
    budget_share:
        Fraction of the engine's ``budget_per_round`` (mutually exclusive
        with ``budget``).
    seed:
        Explicit estimator seed; ``None`` derives one from the engine
        config's seed policy and the task name.
    options:
        Extra keyword arguments for the estimator factory
        (``parent_check=``, ``push_selection=``, ...).
    """

    __slots__ = ("name", "specs", "estimator", "budget", "budget_share",
                 "seed", "options")

    def __init__(
        self,
        name: str,
        specs: Sequence[AnySpec],
        estimator: str | EstimatorFactory = "RS",
        budget: int | None = None,
        budget_share: float | None = None,
        seed: int | None = None,
        options: Mapping | None = None,
    ):
        if not name:
            raise ExperimentError("task name must be non-empty")
        self.specs = list(specs)
        if not self.specs:
            raise ExperimentError("at least one aggregate spec is required")
        if budget is not None and budget_share is not None:
            raise ExperimentError(
                "budget and budget_share are mutually exclusive"
            )
        if budget is not None and budget < 1:
            raise ExperimentError("budget must be positive")
        if budget_share is not None and not 0.0 < budget_share <= 1.0:
            raise ExperimentError("budget_share must be in (0, 1]")
        self.name = name
        self.estimator = estimator
        self.budget = budget
        self.budget_share = budget_share
        self.seed = seed
        self.options = dict(options) if options else {}

    def budget_for(self, config: EngineConfig) -> int:
        """The per-round budget this task gets under an engine config."""
        if self.budget is not None:
            return self.budget
        if self.budget_share is not None:
            return max(1, round(config.budget_per_round * self.budget_share))
        return config.budget_per_round

    def to_dict(self) -> dict:
        """A JSON-safe description (estimators/specs appear by name only —
        rebuilding a task needs the spec objects, not this payload; option
        values JSON cannot express, e.g. callables, appear as reprs)."""
        from ..core.wire import stamp

        estimator = self.estimator
        if not isinstance(estimator, str):
            estimator = getattr(
                estimator, "name", getattr(estimator, "__name__", repr(estimator))
            )
        return stamp({
            "name": self.name,
            "estimator": estimator,
            "specs": [spec.name for spec in self.specs],
            "budget": self.budget,
            "budget_share": self.budget_share,
            "seed": self.seed,
            "options": {
                str(key): _describable(value)
                for key, value in self.options.items()
            },
        })

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EstimationTask({self.name!r}, estimator={self.estimator!r})"


class TaskHandle:
    """A live task inside an engine: its estimator, budget, and reports."""

    __slots__ = ("name", "estimator", "budget_per_round", "task",
                 "_reports", "_history_limit", "rounds_run", "queries_total",
                 "_obs_task_seconds", "_obs_budget_spent")

    def __init__(self, name, estimator, budget_per_round, task,
                 history_limit: int | None = None):
        self.name = name
        self.estimator = estimator
        self.budget_per_round = budget_per_round
        self.task = task
        #: Retained report history, oldest first; bounded by the engine
        #: config's ``report_log_limit`` (accounting stays exact in the
        #: O(1) counters below even when old reports drop).
        self._reports: list[RoundReport] = []
        self._history_limit = history_limit
        self.rounds_run = 0
        self.queries_total = 0
        # Per-task registry handles, resolved once here so rounds never
        # take the registry's get-or-create lock.
        self._obs_task_seconds = OBS.histogram(
            "repro_round_task_seconds", {"task": name}
        )
        self._obs_budget_spent = OBS.counter(
            "repro_budget_spent_total", {"task": name}
        )

    @property
    def reports(self) -> tuple[RoundReport, ...]:
        """The retained reports, in round order (see ``rounds_run`` for
        the lifetime count when a history limit is set)."""
        return tuple(self._reports)

    @property
    def latest(self) -> RoundReport | None:
        """The most recent report, if any round ran yet."""
        return self._reports[-1] if self._reports else None

    @property
    def interface(self) -> TopKInterface:
        """This tenant's private connection to the shared database."""
        return self.estimator.interface

    @contextmanager
    def throttled(self, budget: int):
        """Scope a reduced per-round query budget on this task's estimator.

        The budget-governor hook (:mod:`repro.service.governor`): a
        degraded round runs exactly as if the tenant had been granted the
        smaller budget — same estimator, same RNG stream position — and
        the previous budget is restored afterwards.  ``budget_per_round``
        on the handle (and therefore the ledger) keeps reporting the
        tenant's *nominal* allowance; degradation is reported through the
        governor's telemetry, never silently.  Callers must serialize this
        scope with the round that runs under it (the service plane runs
        all mutating operations on one worker thread).
        """
        if budget < 1:
            raise ExperimentError("throttled budget must be positive")
        previous = self.estimator.budget_per_round
        self.estimator.budget_per_round = budget
        try:
            yield self
        finally:
            self.estimator.budget_per_round = previous

    def _record(self, report: RoundReport) -> None:
        self._reports.append(report)
        if (
            self._history_limit is not None
            and len(self._reports) > self._history_limit
        ):
            del self._reports[: len(self._reports) - self._history_limit]
        self.rounds_run += 1
        self.queries_total += report.queries_used
        if OBS.enabled:
            self._obs_budget_spent.inc(report.queries_used)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TaskHandle({self.name!r}, rounds={self.rounds_run}, "
            f"queries={self.queries_total})"
        )


class Engine:
    """A multi-tenant estimation service over one dynamic hidden database.

    Build it around an existing database or let it build one::

        config = EngineConfig(backend="packed", k=100, budget_per_round=300)
        engine = Engine(config, schema=schema)
        engine.load(payloads)
        engine.submit(EstimationTask("count", [count_all()], "RS"))
        report = engine.run_round()["count"]

    When ``db`` is given, its storage backend stands as built — the
    config's ``backend`` field only governs databases the engine itself
    creates.  The config's ``data_plane`` is scoped around every engine
    operation (submit, load, run_round, apply_updates), so one engine can
    pin a plane without touching the process default.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        db: HiddenDatabase | None = None,
        schema: Schema | None = None,
        ranking: RankingPolicy | None = None,
    ):
        self.config = config if config is not None else EngineConfig()
        # Enable-only: the registry is process-global, so one engine
        # opting in must never switch off another engine's plane.
        if self.config.resolved_observability():
            OBS.enable()
        #: Self-tuning controller (``config.auto``); ``None`` when the
        #: config is fully hand-picked.  Explicit config fields become
        #: pins the tuner must respect — the per-knob opt-out.
        self._tuning: TuningController | None = None
        self._tuning_marks: dict | None = None
        if self.config.auto:
            pinned: dict = {}
            if self.config.backend is not None:
                pinned["backend"] = self.config.backend
            if self.config.shards is not None:
                pinned["shards"] = self.config.shards
            if self.config.parallelism is not None:
                pinned["parallelism"] = self.config.parallelism
            self._tuning = TuningController(pinned=pinned)
        if db is None:
            if schema is None:
                raise ExperimentError(
                    "Engine needs either an existing db or a schema to "
                    "build one"
                )
            if self._tuning is not None:
                # Construction is the first safe seam: nothing exists
                # yet, so the initial (priors-only) choice costs nothing
                # to apply.
                choice = self._tuning.initial_decision().choice
                self.config = self._config_with_choice(choice)
            db = HiddenDatabase(
                schema,
                ranking=ranking,
                block_size=self.config.block_size,
                backend=self.config.backend,
                backend_options=self.config.backend_factory_options(),
            )
        elif schema is not None:
            raise ExperimentError("pass either db or schema, not both")
        elif ranking is not None:
            raise ExperimentError(
                "ranking only applies when the engine builds the database; "
                "an existing db keeps the policy it was built with"
            )
        elif self.config.shards is not None and db.backend != "sharded":
            # An existing db stands as built; a shard count that cannot
            # apply to it must not be silently dropped.  (A pre-built
            # *sharded* db is fine — the Experiment flow constructs it
            # under config.apply(), which scopes the same shard count.)
            raise ExperimentError(
                f"config pins shards={self.config.shards} but the "
                f"supplied database uses backend {db.backend!r}"
            )
        self.db = db
        if self._tuning is not None and self._tuning.current is None:
            # An existing db stands as built: adopt it as the tuner's
            # current choice (later observations may still migrate it).
            self._tuning.current = Candidate(
                db.backend,
                self.config.shards if db.backend == "sharded" else None,
                self.config.resolved_parallelism(),
            )
        #: Session lock: task table + report log.  Held only for short,
        #: bounded critical sections — never across estimator execution —
        #: so ``stream_reports()`` / ``budget_ledger()`` from other
        #: threads respond while a long round is in flight.
        self._lock = threading.RLock()
        #: Round barrier: round execution.  ``run_round`` holds it while
        #: its tasks read; sequentially (``overlap=False``) writers hold
        #: it too, so the store is round-static exactly as the paper's
        #: round model requires.  Reentrant so an ``apply_updates``
        #: callback may call ``advance_round`` itself.
        self._round_lock = threading.RLock()
        #: Write lock: store mutation + epoch publish.  In overlap mode
        #: writers take *only* this lock (reads ride the published epoch,
        #: so churn no longer waits for the round barrier).  Lock order
        #: where both are held: round barrier first, then write lock.
        self._write_lock = threading.RLock()
        self._tasks: dict[str, TaskHandle] = {}
        #: Execution log: ``(task name, report)`` in the order produced,
        #: bounded by ``config.report_log_limit`` (oldest entries drop).
        self._log: list[tuple[str, RoundReport]] = []
        #: Absolute execution index of ``_log[0]`` (> 0 once entries drop).
        self._log_start = 0

    def _append_log(self, name: str, report: RoundReport) -> None:
        self._log.append((name, report))
        limit = self.config.report_log_limit
        if limit is not None and len(self._log) > limit:
            drop = len(self._log) - limit
            del self._log[:drop]
            self._log_start += drop

    @contextmanager
    def _scoped(self):
        """The round barrier plus this engine's context-local plane pin.

        A pinned ``data_plane`` is a :class:`~contextvars.ContextVar`
        override visible only to code this engine runs on the current
        thread — the process-global switch is never touched, so engines
        on other threads (pinned to anything or unpinned) proceed fully
        concurrently and can never observe this engine's plane.  Worker
        threads of a parallel round re-establish the pin themselves
        (ContextVars do not cross thread boundaries).
        """
        with self._round_lock, overriding_data_plane(self.config.data_plane):
            yield

    @contextmanager
    def _write_scoped(self):
        """The writer scope plus this engine's context-local plane pin.

        Sequential mode: the round barrier (writers and rounds exclude
        each other — the store stays round-static).  Overlap mode: the
        write lock only, so ``apply_updates`` / ``load`` run concurrently
        with an epoch-pinned round and serialize just against each other
        and the publish flip.
        """
        lock = self._write_lock if self.config.overlap else self._round_lock
        with lock, overriding_data_plane(self.config.data_plane):
            yield

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Storage backend behind the shared database."""
        return self.db.backend

    @property
    def current_round(self) -> int:
        return self.db.current_round

    def tasks(self) -> tuple[str, ...]:
        """Names of the active tasks, in submission order."""
        with self._lock:
            return tuple(self._tasks)

    def __getitem__(self, name: str) -> TaskHandle:
        with self._lock:
            try:
                return self._tasks[name]
            except KeyError:
                raise UnknownTaskError(name) from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tasks

    # ------------------------------------------------------------------
    # Data loading / churn (simulator side)
    # ------------------------------------------------------------------
    def _load_rows(self, rows) -> int:
        """Bulk-load tuples into the shared database (``engine.load(...)``
        on an instance — see :class:`_LoadName`); returns rows inserted."""
        with self._write_scoped():
            return self.db.insert_many(rows)

    class _LoadName:
        """``Engine.load``'s two faces, told apart by how it is reached.

        On an *instance*, ``engine.load(rows)`` is the bulk-loader it has
        always been.  On the *class*, ``Engine.load(path)`` restores a
        saved engine from a snapshot store directory (see
        :mod:`repro.api.persistence` — ``load_engine`` additionally
        returns the saved ``extra`` payload).  The two uses cannot
        collide: one needs an engine, the other produces one.
        """

        def __get__(self, instance, owner):
            if instance is not None:
                return instance._load_rows
            return owner._load_path

    load = _LoadName()

    @classmethod
    def _load_path(cls, path: str) -> "Engine":
        """Restore an engine from the committed snapshot in ``path``.

        The restored engine resumes bit-identically to the one
        :meth:`save` captured — same estimates, RNG streams, histories,
        and ledgers (see :mod:`repro.api.persistence`).
        """
        from .persistence import load_engine

        engine, _extra = load_engine(path)
        return engine

    def save(self, path: str | None = None, extra=None) -> dict:
        """Snapshot this engine atomically; returns the manifest.

        ``path`` defaults to the config's ``store_dir``.  The snapshot is
        taken under all three engine locks — even in overlap mode, where
        a snapshot needs full quiescence (estimator state and store must
        agree; a mid-round epoch would pair post-round estimators with a
        pre-round store) — so it observes a quiescent point between
        rounds and mutations; ``extra`` (JSON values only) rides along
        and is handed back by :func:`repro.api.persistence.load_engine`.
        Crash-safe: the previous committed snapshot stays readable until
        the new manifest is atomically renamed in.
        """
        from .persistence import save_engine

        if path is None:
            path = self.config.store_dir
        if path is None:
            raise ExperimentError(
                "Engine.save needs a path (or a config with store_dir set)"
            )
        with self._scoped(), self._write_lock, self._lock:
            return save_engine(self, path, extra=extra)

    def apply_updates(
        self, mutate: Callable[[HiddenDatabase], None]
    ) -> None:
        """Run a mutation function against the shared database.

        Sequentially, serialized with every estimation session (the
        round barrier).  In overlap mode, serialized only with other
        writers: churn lands on the live store while a round reads the
        published epoch, and becomes visible to estimators at the next
        ``advance_round`` publish flip.
        """
        with self._write_scoped():
            mutate(self.db)

    def advance_round(self) -> int:
        """Start the next round and return its index.

        In overlap mode this is also the atomic publish flip: the live
        store (with all churn applied so far) is frozen into a new
        :class:`~repro.hiddendb.epoch.StoreEpoch` and installed as the
        version the next ``run_round`` pins its estimators to.

        With ``config.auto`` this is additionally the tuning seam: the
        controller observes the windowed workload profile and, when the
        cost model predicts a big enough win, migrates the store's
        indexes to a new backend/shard layout right here — after the
        publish flip, so overlap-mode readers keep serving the epoch
        just published while the O(n) rebuild proceeds, and content is
        untouched, so estimates are bit-identical across the swap.
        """
        with self._write_scoped():
            round_index = self.db.advance_round()
            if self.config.overlap:
                self.db.publish_epoch()
            if self._tuning is not None:
                self._auto_tune()
            return round_index

    # ------------------------------------------------------------------
    # Self-tuning (config.auto; see repro.tuning and docs/tuning.md)
    # ------------------------------------------------------------------
    def _config_with_choice(self, choice: Candidate) -> EngineConfig:
        """The engine config with a tuning choice folded in.

        Pinned fields are unchanged by construction — the controller's
        candidate grid never contradicts a pin — so the uniform replace
        is safe.
        """
        return self.config.replace(
            backend=choice.backend,
            shards=choice.shards if choice.backend == "sharded" else None,
            parallelism=choice.parallelism,
        )

    def _tuning_profile(self) -> WorkloadProfile:
        """The workload window since the previous tuning observation.

        Built purely from the engine's own deterministic counters — live
        tuple count, the database's tid allocator (every inserted row
        consumes exactly one tid, on both data planes), the tenants'
        lifetime query totals, and the round index — so the profile
        stream replays bit-identically and never depends on wall clock
        or the observability plane being on.
        """
        marks = self._tuning_marks or {}
        n = len(self.db.store)
        allocated = self.db._next_tid
        with self._lock:
            queries = sum(
                handle.queries_total for handle in self._tasks.values()
            )
            tenants = len(self._tasks)
        round_index = self.db._round
        rounds = max(1, round_index - marks.get("round_index",
                                                round_index - 1))
        # Row-accurate churn: inserts come straight off the tid
        # allocator; deletes are whatever inserts did not show up as
        # size growth.
        inserts = max(0, allocated - marks.get("allocated", 0))
        grew = n - marks.get("store_size", 0)
        deletes = max(0, inserts - grew)
        churn_total = inserts + deletes
        delete_share = deletes / churn_total if churn_total > 0 else 0.0
        queries_delta = max(0, queries - marks.get("queries_total", 0))
        self._tuning_marks = {
            "round_index": round_index,
            "allocated": allocated,
            "store_size": n,
            "queries_total": queries,
        }
        return WorkloadProfile(
            store_size=n,
            churn_per_round=churn_total / rounds,
            delete_share=delete_share,
            queries_per_round=queries_delta / rounds,
            tenants=tenants,
            rounds=rounds,
        )

    def _auto_tune(self) -> None:
        """One controller observation; applies a migrate decision.

        Called from ``advance_round`` under the writer scope (and after
        the publish flip in overlap mode), which is exactly the
        serialization the migration seam requires.
        """
        decision = self._tuning.observe(self._tuning_profile())
        if decision.action != ACTION_MIGRATE:
            return
        choice = decision.choice
        config = self._config_with_choice(choice)
        # Derive factory options from the *new* config so knobs the
        # candidate does not model (a mapped run directory under
        # store_dir, the sharded dispatch width) come along too.
        options = config.backend_factory_options()
        if (
            choice.backend != self.db.backend
            or options != dict(self.db.store.backend_options)
        ):
            # Only a changed storage layout needs the O(n) rebuild; a
            # parallelism-only decision just rebinds the config.
            self.db.migrate_backend(choice.backend, options)
        self.config = config

    def tuning_report(self) -> dict:
        """A stamped, strict-JSON audit of the self-tuning plane.

        Always callable: with ``auto=False`` it reports
        ``enabled: false`` and the (hand-picked) effective config, so
        the service telemetry block has one shape either way.
        """
        from ..core.wire import stamp

        payload: dict = {
            "enabled": self._tuning is not None,
            "backend": self.backend,
            "effective": {
                "backend": self.config.resolved_backend(),
                "shards": self.config.shards,
                "parallelism": self.config.resolved_parallelism(),
                "overlap": self.config.overlap,
            },
        }
        if self._tuning is not None:
            payload.update(self._tuning.report())
        return stamp(payload)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def submit(self, task: EstimationTask) -> TaskHandle:
        """Register a task and build its estimator over the shared store.

        The task gets its own :class:`TopKInterface` (per-tenant budget
        accounting and query counters) bound to the shared database.

        Holds the writer scope (estimator construction may build and
        backfill indexes over the shared store — the round barrier
        sequentially, the write lock in overlap mode) and then the
        session lock for the table insert — always in that order.
        """
        with self._write_scoped(), self._lock:
            if task.name in self._tasks:
                raise DuplicateTaskError(task.name)
            factory = resolve_estimator(task.estimator)
            budget = task.budget_for(self.config)
            interface = TopKInterface(self.db, self.config.k)
            estimator = factory(
                interface,
                task.specs,
                budget_per_round=budget,
                seed=self.config.task_seed(task.name, task.seed),
                **task.options,
            )
            handle = TaskHandle(
                task.name, estimator, budget, task,
                history_limit=self.config.report_log_limit,
            )
            self._tasks[task.name] = handle
            return handle

    def cancel(self, name: str) -> TaskHandle:
        """Remove a task; its handle (with history) is returned."""
        with self._lock:
            try:
                return self._tasks.pop(name)
            except KeyError:
                raise UnknownTaskError(name) from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_estimator(
        self,
        handle: TaskHandle,
        plane: str,
        epoch: StoreEpoch | None = None,
    ) -> RoundReport:
        """One task's round, pinned to the round's resolved data plane
        (and, in overlap mode, to the round's published epoch).

        ``plane`` is captured on the calling thread *after* every override
        is in scope (engine pin > caller's context-local override >
        process default), because worker threads do not inherit the
        submitting thread's ContextVars — without the explicit pin a
        parallel round would silently drop a caller-scoped plane.  The
        epoch pin is a ContextVar too, hence re-established here for the
        same reason.
        """
        with overriding_data_plane(plane):
            if epoch is None:
                return handle.estimator.run_round()
            with reading_epoch(self.db, epoch):
                return handle.estimator.run_round()

    def _forked_round_main(self, handle, plane, epoch, conn) -> None:
        """Entry point of one forked round worker (runs in the child).

        Sends either ``{"report", "estimator"}`` (both strict-JSON, the
        :mod:`repro.core.wire` seam) or ``{"error"}`` over the pipe, then
        exits via ``os._exit`` — skipping interpreter teardown so the
        child's copies of weakref finalizers (e.g. the mapped backend's
        run-directory cleanup) can never touch state shared with the
        parent.
        """
        try:
            # First thing in the child: all instrumentation is guarded by
            # OBS.enabled, so disabling here guarantees the child never
            # touches registry or span-log locks (another thread may have
            # held one at fork time — touching it would deadlock).  The
            # child's metrics are intentionally lost; the parent records
            # the round outcome when it adopts the report.
            OBS.disable()
            try:
                report = self._run_estimator(handle, plane, epoch)
                payload = {
                    "report": report.to_dict(),
                    "estimator": handle.estimator.state_to_wire(),
                }
            except BaseException as exc:
                payload = {"error": wire_error(exc)}
            conn.send_bytes(json.dumps(payload).encode("utf-8"))
            conn.close()
        finally:
            os._exit(0)

    def _run_round_forked(
        self, selected, plane, epoch, workers
    ) -> list[RoundReport | BaseException]:
        """Fan the round out to forked worker processes, in waves of
        ``workers``.

        Each child runs its task against the fork-time copy-on-write
        snapshot of the store and hands report + estimator state back as
        strict JSON; the parent adopts the state
        (:meth:`~repro.core.estimators.base.Estimator.restore_state`), so
        the next round continues bit-identically to an in-process run.
        """
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            raise ExperimentError(
                "round_executor='fork' needs a platform with fork "
                "(POSIX); use the thread executor here"
            ) from None
        produced: list[RoundReport | BaseException] = [None] * len(selected)
        indexed = list(enumerate(selected))
        for start in range(0, len(indexed), workers):
            running = []
            for index, handle in indexed[start:start + workers]:
                receiver, sender = ctx.Pipe(duplex=False)
                worker = ctx.Process(
                    target=self._forked_round_main,
                    args=(handle, plane, epoch, sender),
                    daemon=True,
                )
                worker.start()
                sender.close()
                running.append((index, handle, worker, receiver))
            for index, handle, worker, receiver in running:
                try:
                    data = receiver.recv_bytes()
                except EOFError:
                    data = None
                worker.join()
                receiver.close()
                if data is None:
                    produced[index] = ExperimentError(
                        f"forked round worker for task {handle.name!r} "
                        f"died without reporting "
                        f"(exit code {worker.exitcode})"
                    )
                    continue
                payload = json.loads(data.decode("utf-8"))
                if "error" in payload:
                    produced[index] = error_from_wire(payload["error"])
                    continue
                handle.estimator.restore_state(payload["estimator"])
                produced[index] = RoundReport.from_dict(payload["report"])
        return produced

    def run_round(
        self,
        tasks: Sequence[str] | None = None,
        *,
        parallel: int | None = None,
    ) -> dict[str, RoundReport]:
        """Run one round for every (or the named) active task.

        Tasks run over the shared, round-static store; each spends only
        its own budget.  ``parallel`` is the worker-thread count (``None``
        defers to ``config.parallelism``, then the process default;
        ``1`` = sequential).  Estimates are bit-identical across schedules
        — every task owns its RNG, interface counters, and session, and
        the store honors the reader-concurrency contract — and reports
        are recorded in deterministic submission order either way.

        The round barrier is held for the duration — sequentially that
        makes mutations wait; in overlap mode estimators are pinned to
        the published epoch instead, so ``apply_updates`` churn proceeds
        concurrently (only other rounds and ``save`` wait).  The session
        lock is only taken for the initial task snapshot and the final
        report merge, so ``stream_reports()`` and ``budget_ledger()``
        from other threads stay responsive during a long round.  Returns
        ``{task name: report}``.
        """
        if not OBS.enabled:
            return self._run_round_inner(tasks, parallel)
        _ROUNDS_TOTAL.inc()
        started = perf_counter()
        with OBS.span("engine.run_round"):
            try:
                return self._run_round_inner(tasks, parallel)
            finally:
                _ROUND_SECONDS.observe(perf_counter() - started)

    def _run_round_inner(
        self,
        tasks: Sequence[str] | None,
        parallel: int | None,
    ) -> dict[str, RoundReport]:
        with self._scoped():
            # The effective plane, with every override already in scope
            # (the engine's pin via _scoped, or the caller's own
            # context-local override); workers re-pin it explicitly.
            plane = get_data_plane()
            with self._lock:
                if tasks is None:
                    selected = list(self._tasks.values())
                else:
                    selected = [self[name] for name in tasks]
            workers = (
                parallel
                if parallel is not None
                else self.config.resolved_parallelism()
            )
            if workers < 1:
                raise ExperimentError("parallel must be at least 1")
            hooked = any(
                getattr(handle.estimator, "on_query", None) is not None
                for handle in selected
            )
            epoch: StoreEpoch | None = None
            if self.config.overlap:
                if hooked:
                    # The intra-round update driver needs its mutations
                    # visible to the very next query — epoch pinning
                    # defers visibility to the next publish flip.
                    raise ExperimentError(
                        "overlap mode cannot serve estimators with an "
                        "on_query mutation hook (intra-round update "
                        "model needs read-your-writes)"
                    )
                epoch = self.db.published
                if epoch is None:
                    # First round before any advance: publish lazily.
                    # Briefly take the write lock — a concurrent
                    # apply_updates must not churn mid-freeze.  (Lock
                    # order: round barrier, already held, then write.)
                    with self._write_lock:
                        epoch = self.db.published
                        if epoch is None:
                            epoch = self.db.publish_epoch()
            if OBS.enabled:
                # Per-task wall times both feed the per-task histograms
                # and, summed against the round wall below, the worker-
                # utilization gauge.  The list append is GIL-atomic, so
                # pool workers share it without a lock.
                round_started = perf_counter()
                task_seconds: list[float] = []

                def runner(handle, plane, epoch):
                    task_started = perf_counter()
                    try:
                        with OBS.span("round.task"):
                            return self._run_estimator(handle, plane, epoch)
                    finally:
                        elapsed = perf_counter() - task_started
                        handle._obs_task_seconds.observe(elapsed)
                        task_seconds.append(elapsed)
            else:
                task_seconds = []
                runner = self._run_estimator
            # Outcomes are RoundReports or the exception a task raised;
            # completed tasks' reports are recorded either way (their
            # budget was spent and their RNG advanced — dropping them
            # would desync the ledger from actual interface usage).
            produced: list[RoundReport | BaseException] = []
            if workers > 1 and len(selected) > 1:
                if hooked:
                    # The intra-round update driver mutates the store
                    # between queries — incompatible with concurrent
                    # readers.  (A single hooked task runs sequentially
                    # below regardless of the worker count.)
                    raise ExperimentError(
                        "run_round(parallel>1) cannot serve estimators "
                        "with an on_query mutation hook (intra-round "
                        "update model)"
                    )
                if self.config.round_executor == "fork":
                    produced = self._run_round_forked(
                        selected, plane, epoch, workers
                    )
                else:
                    with ThreadPoolExecutor(
                        max_workers=min(workers, len(selected)),
                        thread_name_prefix="repro-round",
                    ) as pool:
                        futures = [
                            pool.submit(runner, handle, plane, epoch)
                            for handle in selected
                        ]
                        for future in futures:
                            try:
                                produced.append(future.result())
                            except BaseException as exc:
                                produced.append(exc)
            else:
                for handle in selected:
                    try:
                        produced.append(runner(handle, plane, epoch))
                    except BaseException as exc:
                        # Sequential semantics: later tasks do not run
                        # this round (matches the pre-parallel engine).
                        produced.append(exc)
                        break
            if (
                OBS.enabled
                and workers > 1
                and len(selected) > 1
                and self.config.round_executor != "fork"
                and task_seconds
            ):
                wall = perf_counter() - round_started
                effective = min(workers, len(selected))
                if wall > 0:
                    _WORKER_UTILIZATION.set(
                        min(1.0, sum(task_seconds) / (effective * wall))
                    )
            with self._lock:
                reports: dict[str, RoundReport] = {}
                error: BaseException | None = None
                for handle, outcome in zip(selected, produced):
                    if isinstance(outcome, BaseException):
                        if error is None:
                            error = outcome
                        continue
                    handle._record(outcome)
                    # A task cancelled (or cancelled-and-replaced) while
                    # the round ran keeps the report on its own handle —
                    # returned to the cancel() caller — but stays out of
                    # the engine log, which must agree with the ledger
                    # about whatever currently owns the name.
                    if self._tasks.get(handle.name) is handle:
                        self._append_log(handle.name, outcome)
                    reports[handle.name] = outcome
                if error is not None:
                    raise error
                return reports

    def stream_reports(
        self, task: str | None = None
    ) -> Iterator[tuple[str, RoundReport]]:
        """Yield ``(task name, report)`` in execution order.

        Drains everything still in the (``report_log_limit``-bounded) log
        — including reports appended by other threads while iterating —
        then stops.  Safe to call again later; it always starts from the
        oldest retained entry.

        Wherever eviction opened a gap — reports already dropped when the
        stream started, or dropped mid-iteration under a fast producer —
        the stream yields a ``(GAP_TASK, ReportGap(dropped))`` marker
        (never silently replaying a gapped log as if it were contiguous).
        Markers are yielded even under a ``task`` filter: the filter
        cannot know whether dropped entries matched.
        """
        index = 0
        while True:
            with self._lock:
                if index < self._log_start:
                    dropped = self._log_start - index
                    index = self._log_start
                    entry = (GAP_TASK, ReportGap(dropped))
                elif index - self._log_start >= len(self._log):
                    return
                else:
                    entry = self._log[index - self._log_start]
                    index += 1
            name, report = entry
            if name == GAP_TASK or task is None or task == name:
                yield entry

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def budget_ledger(self) -> dict[str, dict[str, int]]:
        """Per-task budget accounting snapshot."""
        with self._lock:
            return {
                name: {
                    "budget_per_round": handle.budget_per_round,
                    "rounds": handle.rounds_run,
                    "queries_total": handle.queries_total,
                    "queries_last_round": (
                        handle.latest.queries_used if handle.latest else 0
                    ),
                }
                for name, handle in self._tasks.items()
            }

    def metrics(self) -> dict:
        """A stamped, strict-JSON observability snapshot of this engine.

        Combines the engine's own view (round index, backend, per-task
        counters and interface stats) with the process-global registry
        (:meth:`repro.obs.MetricsRegistry.snapshot`) and its derived
        summary.  Always callable — with observability disabled the
        registry portion reports ``enabled: false`` and whatever was
        recorded while it was last on.
        """
        from ..core.wire import stamp

        with self._lock:
            tasks = {
                name: {
                    "rounds": handle.rounds_run,
                    "queries_total": handle.queries_total,
                    "interface": handle.interface.stats.to_dict(),
                }
                for name, handle in self._tasks.items()
            }
        return stamp({
            "enabled": OBS.enabled,
            "round_index": self.current_round,
            "backend": self.backend,
            "tasks": tasks,
            "registry": OBS.snapshot(),
            "summary": OBS.summary(),
        })

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Engine(backend={self.backend!r}, n={len(self.db)}, "
            f"round={self.current_round}, tasks={list(self._tasks)})"
        )
