"""``repro.api`` — the unified public facade.

One config object (:class:`EngineConfig`), one service boundary
(:class:`Engine`), and symmetric registries for storage backends and
estimators.  The CLI, the experiment harness, and the figure drivers are
thin clients of this module; everything here is importable as::

    from repro.api import Engine, EngineConfig, EstimationTask

Extension points:

* :func:`register_estimator` — ship a new estimation algorithm under a
  public name (see :mod:`repro.extensions.counts` for a worked example
  that adapts the interface before constructing its estimator).
* :func:`register_backend` — ship a new storage engine behind the prefix
  indexes (see :mod:`repro.hiddendb.backends`).
"""

from ..core.estimators.registry import (
    ESTIMATOR_CLASSES,
    available_estimators,
    register_estimator,
    resolve_estimator,
)
from ..hiddendb.backends import (
    available_backends,
    get_default_backend,
    get_default_backend_options,
    register_backend,
    set_default_backend,
    set_default_backend_options,
    using_backend,
    using_backend_options,
)
from ..hiddendb.store import (
    get_data_plane,
    overriding_data_plane,
    set_data_plane,
    using_data_plane,
)
from ..obs import (
    OBS,
    get_default_observability,
    set_default_observability,
    using_observability,
)
from ..tuning import (
    CostModel,
    TuningController,
    TuningDecision,
    WorkloadProfile,
)
from .config import (
    ROUND_EXECUTORS,
    SEED_POLICIES,
    EngineConfig,
    get_default_parallelism,
    set_default_parallelism,
    using_parallelism,
)
from .engine import GAP_TASK, Engine, EstimationTask, ReportGap, TaskHandle
from .persistence import has_snapshot, load_engine, save_engine

__all__ = [
    "ESTIMATOR_CLASSES",
    "Engine",
    "EngineConfig",
    "EstimationTask",
    "GAP_TASK",
    "ROUND_EXECUTORS",
    "ReportGap",
    "SEED_POLICIES",
    "TaskHandle",
    "OBS",
    "CostModel",
    "TuningController",
    "TuningDecision",
    "WorkloadProfile",
    "has_snapshot",
    "load_engine",
    "save_engine",
    "available_backends",
    "available_estimators",
    "get_data_plane",
    "get_default_backend",
    "get_default_backend_options",
    "get_default_observability",
    "get_default_parallelism",
    "overriding_data_plane",
    "register_backend",
    "register_estimator",
    "resolve_estimator",
    "set_data_plane",
    "set_default_backend",
    "set_default_backend_options",
    "set_default_observability",
    "set_default_parallelism",
    "using_backend",
    "using_backend_options",
    "using_data_plane",
    "using_observability",
    "using_parallelism",
]
