"""``repro.obs`` — the engine-wide observability plane.

A zero-dependency metrics/tracing substrate shared by every layer:

* :data:`OBS` — the process-global :class:`MetricsRegistry` of counters,
  gauges and histograms.  Handles are cheap, thread-safe (GIL-coalesced
  increments), and a *disabled* registry costs one attribute check on hot
  paths (``if OBS.enabled: ...``).
* Span tracing — ``with OBS.span("round.publish_flip"): ...`` builds
  parent/child timing records, exportable as JSONL or rendered as a
  profile tree (:func:`format_span_tree`).
* Exports — strict-JSON :meth:`MetricsRegistry.snapshot` (stamped via
  ``repro.core.wire``), Prometheus text via
  :meth:`MetricsRegistry.to_prometheus` (served at ``/v1/metrics``), and
  derived headline numbers via :meth:`MetricsRegistry.summary`.

Metric names live in a static :data:`CATALOG` (typo-proof, doc-synced);
extensions add names with :func:`register_metric` before creating
handles.  Instrumentation never touches estimator randomness, so results
are bit-identical with observability on or off.
"""

from .catalog import CATALOG, KINDS, kind_of
from .catalog import register as register_metric
from .registry import (
    OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
    get_default_observability,
    set_default_observability,
    using_observability,
)
from .spans import (
    DEFAULT_SPAN_LIMIT,
    NULL_SPAN,
    SpanLog,
    format_span_tree,
)

__all__ = [
    "CATALOG",
    "Counter",
    "DEFAULT_SPAN_LIMIT",
    "Gauge",
    "Histogram",
    "KINDS",
    "MetricsRegistry",
    "NULL_SPAN",
    "OBS",
    "SIZE_BUCKETS",
    "SpanLog",
    "TIME_BUCKETS",
    "format_span_tree",
    "get_default_observability",
    "kind_of",
    "register_metric",
    "set_default_observability",
    "using_observability",
]
