"""Span-style tracing: parent/child timing records over a ContextVar stack.

A span is a timed scope::

    with OBS.span("round.publish_flip"):
        ...

Nesting is tracked per *context* (thread / asyncio task) through a
:class:`~contextvars.ContextVar`, so concurrent round workers each build
their own parent chain without locking on the hot path.  Records land in a
bounded :class:`SpanLog` at scope exit (one dict per span — JSONL-ready),
and :func:`format_span_tree` aggregates them into the per-phase profile
tree ``repro-experiments run --profile`` prints.

When the registry is disabled, ``OBS.span(...)`` hands back a shared no-op
context manager — entering it costs two empty method calls and allocates
nothing.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextvars import ContextVar
from time import perf_counter
from typing import Iterable, Mapping

#: The innermost open span's id in this context (None at top level).
_ACTIVE: ContextVar[int | None] = ContextVar(
    "repro_obs_active_span", default=None
)

#: Retained span records before the oldest drop (bounds memory in
#: long-running services; drops are counted, never silent).
DEFAULT_SPAN_LIMIT = 20_000


class _NullSpan:
    """The shared no-op span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One live span scope; appends its record to the log on exit."""

    __slots__ = ("_log", "name", "span_id", "parent_id", "_start", "_token")

    def __init__(self, log: "SpanLog", name: str):
        self._log = log
        self.name = name

    def __enter__(self) -> "_Span":
        self.span_id = self._log._allocate_id()
        self.parent_id = _ACTIVE.get()
        self._token = _ACTIVE.set(self.span_id)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        seconds = perf_counter() - self._start
        _ACTIVE.reset(self._token)
        self._log._append({
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self._start,
            "seconds": seconds,
            "thread": threading.current_thread().name,
            "error": exc_type.__name__ if exc_type is not None else None,
        })
        return False


class SpanLog:
    """Bounded, thread-safe store of completed span records."""

    def __init__(self, limit: int = DEFAULT_SPAN_LIMIT):
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=limit)
        self._next_id = 0
        self.dropped = 0

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _append(self, record: dict) -> None:
        with self._lock:
            if (
                self._records.maxlen is not None
                and len(self._records) == self._records.maxlen
            ):
                self.dropped += 1
            self._records.append(record)

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> list[dict]:
        """A stable snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def to_jsonl(self) -> str:
        """The retained records as JSON Lines (one span per line)."""
        return "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.records()
        )


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1000.0:.1f}ms"
    return f"{seconds * 1_000_000.0:.0f}us"


def format_span_tree(records: Iterable[Mapping]) -> str:
    """Aggregate span records into an indented per-phase profile tree.

    Spans sharing the same root-to-self name path collapse into one line
    (count, total, mean); lines order by each path's earliest start, so
    the tree reads in execution order.  Orphans (parent evicted from the
    bounded log, or still open) render as roots.
    """
    records = list(records)
    if not records:
        return "(no spans recorded)"
    by_id = {record["id"]: record for record in records}
    paths: dict[int, tuple[str, ...]] = {}

    def path_of(record: Mapping) -> tuple[str, ...]:
        span_id = record["id"]
        known = paths.get(span_id)
        if known is not None:
            return known
        parent = record["parent"]
        if parent is None or parent not in by_id:
            path: tuple[str, ...] = (record["name"],)
        else:
            path = path_of(by_id[parent]) + (record["name"],)
        paths[span_id] = path
        return path

    # path -> [count, total seconds, earliest start]
    aggregate: dict[tuple[str, ...], list[float]] = {}
    for record in records:
        path = path_of(record)
        entry = aggregate.get(path)
        if entry is None:
            aggregate[path] = [1, record["seconds"], record["start"]]
        else:
            entry[0] += 1
            entry[1] += record["seconds"]
            entry[2] = min(entry[2], record["start"])
    lines = []
    for path, (count, total, _start) in sorted(
        aggregate.items(), key=lambda item: item[1][2]
    ):
        indent = "  " * (len(path) - 1)
        label = f"{indent}{path[-1]}"
        mean = total / count
        lines.append(
            f"{label:<44s} x{count:<5d} total {_format_seconds(total):>9s}"
            f"  mean {_format_seconds(mean):>9s}"
        )
    return "\n".join(lines)
