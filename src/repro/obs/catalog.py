"""The static metric catalog: every metric name the engine may emit.

One table, checked in two directions:

* :class:`~repro.obs.registry.MetricsRegistry` refuses to create a metric
  whose name (or kind) is not cataloged — instrumentation typos fail fast
  instead of silently splitting a series;
* ``tools/check_docs.py`` cross-checks the catalog against
  ``docs/observability.md``, so the documented metric list cannot drift
  from the code in either direction.

Extensions register their own names through :func:`register` before
creating handles (mirroring the estimator/backend registries).
"""

from __future__ import annotations

from ..errors import ExperimentError

#: Metric kinds a registry entry may declare.
KINDS = ("counter", "gauge", "histogram")

#: ``name -> (kind, help text)`` for every engine-emitted metric.
CATALOG: dict[str, tuple[str, str]] = {
    # --- top-k interface -------------------------------------------------
    "repro_queries_total": (
        "counter",
        "Top-k interface queries served, by result status "
        "(underflow/valid/overflow).",
    ),
    # --- storage backends ------------------------------------------------
    "repro_rank_cache_hits_total": (
        "counter", "Rank-cache hits, by storage backend.",
    ),
    "repro_rank_cache_misses_total": (
        "counter", "Rank-cache misses (full probes), by storage backend.",
    ),
    "repro_backend_compactions_total": (
        "counter", "Buffer-into-run compactions, by storage backend.",
    ),
    "repro_bulk_merge_rows": (
        "histogram", "Rows per bulk index merge, by op (add/remove).",
    ),
    "repro_shard_keys": (
        "gauge", "Keys currently held per shard of the sharded backend.",
    ),
    "repro_mapped_remaps_total": (
        "counter", "Run-file remaps (np.memmap installs) of the mapped "
        "backend.",
    ),
    "repro_mapped_fsync_seconds": (
        "histogram", "fsync latency of mapped-backend run-file installs.",
    ),
    "repro_mapped_compaction_seconds": (
        "histogram", "End-to-end mapped-backend compaction latency "
        "(merge + write + fsync + remap).",
    ),
    # --- epoch lifecycle (HTAP overlap) ----------------------------------
    "repro_epoch_publish_seconds": (
        "histogram", "Publish-flip latency: freezing the live store into "
        "an immutable StoreEpoch.",
    ),
    "repro_epoch_privatized_blocks_total": (
        "counter", "Copy-on-write heap-block privatizations (first "
        "in-place write after a snapshot).",
    ),
    "repro_epoch_pinned_readers": (
        "gauge", "Reader scopes currently pinned to a published epoch.",
    ),
    "repro_epoch_refreeze_reused_total": (
        "counter", "Backend freeze() calls satisfied by reusing the "
        "previous frozen view unchanged (no buffer re-clone), by backend.",
    ),
    # --- self-tuning (repro.tuning) --------------------------------------
    "repro_tuning_decisions_total": (
        "counter", "Tuning controller decisions, by action "
        "(initial/keep/migrate).",
    ),
    "repro_tuning_migrations_total": (
        "counter", "Online backend/shard migrations applied at an epoch "
        "flip, by target backend.",
    ),
    "repro_tuning_migration_seconds": (
        "histogram", "Wall time of one online index rebuild + atomic "
        "swap (the migration itself, not the decision).",
    ),
    # --- engine ----------------------------------------------------------
    "repro_rounds_total": (
        "counter", "Engine rounds executed (run_round calls).",
    ),
    "repro_round_seconds": (
        "histogram", "Wall time of one engine round across all tasks.",
    ),
    "repro_round_task_seconds": (
        "histogram", "Per-task round latency, by task name.",
    ),
    "repro_budget_spent_total": (
        "counter", "Queries charged against the round budget, by task.",
    ),
    "repro_worker_utilization": (
        "gauge", "Busy fraction of the last parallel round's workers "
        "(sum of task seconds / workers x round wall).",
    ),
    # --- service plane ---------------------------------------------------
    "repro_http_request_seconds": (
        "histogram", "Service request latency, by endpoint.",
    ),
    "repro_http_requests_total": (
        "counter", "Service requests served, by endpoint and status code.",
    ),
    "repro_sse_backlog_events": (
        "gauge", "Report events retained in the SSE replay buffer.",
    ),
    "repro_governor_actions_total": (
        "counter", "Budget-governor ladder outcomes, by action "
        "(allow/shrink_k/widen_rounds/refuse).",
    ),
}


def kind_of(name: str) -> str:
    """The cataloged kind of a metric name; raises on unknown names."""
    try:
        return CATALOG[name][0]
    except KeyError:
        raise ExperimentError(
            f"metric {name!r} is not in the observability catalog; "
            f"register it via repro.obs.register_metric"
        ) from None


def register(name: str, kind: str, help_text: str) -> None:
    """Catalog an extension metric so the registry will accept it.

    Re-registering an existing name with the same kind is a no-op (so
    modules can register idempotently at import time); changing the kind
    of a cataloged name raises.
    """
    if kind not in KINDS:
        raise ExperimentError(
            f"unknown metric kind {kind!r}; available: {', '.join(KINDS)}"
        )
    existing = CATALOG.get(name)
    if existing is not None and existing[0] != kind:
        raise ExperimentError(
            f"metric {name!r} is already cataloged as a {existing[0]}"
        )
    CATALOG[name] = (kind, help_text)
