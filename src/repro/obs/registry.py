"""The process-global metrics registry: counters, gauges, histograms.

Design constraints (the tentpole contract):

* **Disabled must be ~free.**  Instrumented hot paths follow one pattern::

      if OBS.enabled:
          _HITS.inc()

  — a single attribute check when observability is off.  Handles are
  created once (module import / component construction) via get-or-create
  and cached, so the enabled path is one bound-method call on a plain
  Python object.
* **Thread-safe by GIL-atomicity.**  ``Counter.inc`` / ``Gauge.set`` are
  single ``+=`` / ``=`` operations on instance attributes — coalesced
  under the GIL exactly like the storage engines' reader-concurrency
  contract.  Histograms tolerate the same benign interleavings; the
  registry lock only guards handle creation and snapshot assembly.
* **One registry forever.**  :data:`OBS` is created at import and never
  replaced — ``enable()`` / ``disable()`` / ``reset()`` mutate it in
  place, so cached handles can never go stale.  Observability therefore
  never touches estimator RNG or results: estimates are bit-identical
  with the registry on or off.

Metric names must be cataloged (:mod:`repro.obs.catalog`); labels are
low-cardinality dicts (``{"backend": "packed"}``) keyed Prometheus-style.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_right
from contextlib import contextmanager
from typing import Iterator, Mapping

from ..errors import ExperimentError
from .catalog import kind_of
from .spans import NULL_SPAN, SpanLog, _Span, _NullSpan

#: Latency histogram bounds, seconds (upper edges; +Inf is implicit).
TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size histogram bounds (rows per merge etc.), powers of four.
SIZE_BUCKETS = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0,
    65536.0, 262144.0, 1048576.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted(
        (str(key), str(value)) for key, value in labels.items()
    ))


class Counter:
    """A monotonically increasing count (GIL-coalesced ``+=``)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time level (set / inc / dec)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bound bucketed distribution (Prometheus-style cumulative)."""

    __slots__ = ("name", "labels", "bounds", "counts", "total", "count")

    def __init__(self, name: str, labels: LabelKey, bounds: tuple):
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: LabelKey, extra: str = "") -> str:
    parts = [
        f'{key}="{_escape_label(value)}"' for key, value in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _json_float(value: float) -> float | str:
    """Strict-JSON float (mirrors :func:`repro.core.wire.encode_float`)."""
    from ..core.wire import encode_float

    return encode_float(value)


class MetricsRegistry:
    """Get-or-create metric handles plus snapshot/export assembly."""

    def __init__(self):
        #: THE hot-path switch — instrumented code checks this attribute
        #: and nothing else when observability is off.
        self.enabled = False
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelKey], object] = {}
        self.spans = SpanLog()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid) + clear spans."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()
        self.spans.clear()

    # ------------------------------------------------------------------
    # Handles (get-or-create; call once and cache on hot paths)
    # ------------------------------------------------------------------
    def _get(self, cls, kind: str, name: str, labels: Mapping | None, *args):
        if kind_of(name) != kind:
            raise ExperimentError(
                f"metric {name!r} is cataloged as a {kind_of(name)}, "
                f"not a {kind}"
            )
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], *args)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ExperimentError(
                    f"metric {name!r} already exists as "
                    f"{type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, labels: Mapping | None = None) -> Counter:
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, labels: Mapping | None = None) -> Gauge:
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping | None = None,
        buckets: tuple | None = None,
    ) -> Histogram:
        if buckets is None:
            buckets = (
                TIME_BUCKETS if name.endswith("_seconds") else SIZE_BUCKETS
            )
        return self._get(Histogram, "histogram", name, labels, buckets)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> "_Span | _NullSpan":
        """A timed scope (no-op shared instance while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.spans.span(name)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def _sorted_metrics(self) -> list:
        with self._lock:
            return [
                self._metrics[key] for key in sorted(self._metrics)
            ]

    def snapshot(self) -> dict:
        """A stamped, strict-JSON metric snapshot (
        ``json.dumps(..., allow_nan=False)``-safe)."""
        from ..core.wire import stamp

        counters, gauges, histograms = [], [], []
        for metric in self._sorted_metrics():
            entry = {"name": metric.name, "labels": dict(metric.labels)}
            if isinstance(metric, Counter):
                entry["value"] = metric.value
                counters.append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = _json_float(float(metric.value))
                gauges.append(entry)
            else:
                cumulative, buckets = 0, []
                for bound, count in zip(
                    (*metric.bounds, float("inf")), metric.counts
                ):
                    cumulative += count
                    buckets.append([_json_float(bound), cumulative])
                entry.update({
                    "count": metric.count,
                    "sum": _json_float(metric.total),
                    "buckets": buckets,
                })
                histograms.append(entry)
        return stamp({
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": {
                "recorded": len(self.spans),
                "dropped": self.spans.dropped,
            },
        })

    def delta(self, since: Mapping | None) -> dict:
        """Per-window metric deltas against a prior :meth:`snapshot`.

        The tuner (and any rate-based consumer) needs *windowed* activity
        — queries per round, churn per flip — not lifetime totals.  Pass
        the snapshot taken at the start of the window; the result has the
        same shape as :meth:`snapshot` with every counter value, histogram
        count/sum and cumulative bucket replaced by its increase over the
        window.  Gauges are levels, not totals, so they carry their
        current value unchanged.  Metrics that did not exist at window
        start delta against zero; ``since=None`` is an empty baseline
        (delta == snapshot).

        Concurrency: both endpoints are assembled under the registry
        lock, and counter/histogram writes are GIL-coalesced single
        operations, so a delta taken while other threads increment is
        always a *consistent prefix* — never negative, never torn.
        """
        current = self.snapshot()
        if not since:
            return current

        def _index(entries):
            return {
                (entry["name"], tuple(sorted(entry["labels"].items()))):
                entry
                for entry in entries
            }

        base_counters = _index(since.get("counters", ()))
        base_histograms = _index(since.get("histograms", ()))
        for entry in current["counters"]:
            key = (entry["name"], tuple(sorted(entry["labels"].items())))
            base = base_counters.get(key)
            if base is not None:
                entry["value"] -= base["value"]
        for entry in current["histograms"]:
            key = (entry["name"], tuple(sorted(entry["labels"].items())))
            base = base_histograms.get(key)
            if base is None:
                continue
            entry["count"] -= base["count"]
            base_buckets = {
                bound: cumulative
                for bound, cumulative in base.get("buckets", ())
            }
            entry["buckets"] = [
                [bound, cumulative - base_buckets.get(bound, 0)]
                for bound, cumulative in entry["buckets"]
            ]
            if isinstance(entry["sum"], (int, float)) and isinstance(
                base["sum"], (int, float)
            ):
                entry["sum"] = _json_float(entry["sum"] - base["sum"])
        return current

    def summary(self) -> dict:
        """Derived headline numbers (query mix, cache hit rate, flip
        latency) for bench drops and quick health checks."""
        queries: dict[str, int] = {}
        hits = misses = 0
        publish_count, publish_total = 0, 0.0
        for metric in self._sorted_metrics():
            if isinstance(metric, Counter):
                if metric.name == "repro_queries_total":
                    status = dict(metric.labels).get("status", "unknown")
                    queries[status] = queries.get(status, 0) + metric.value
                elif metric.name == "repro_rank_cache_hits_total":
                    hits += metric.value
                elif metric.name == "repro_rank_cache_misses_total":
                    misses += metric.value
            elif (
                isinstance(metric, Histogram)
                and metric.name == "repro_epoch_publish_seconds"
            ):
                publish_count += metric.count
                publish_total += metric.total
        lookups = hits + misses
        return {
            "queries": {**queries, "total": sum(queries.values())},
            "rank_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (
                    round(hits / lookups, 6) if lookups else None
                ),
            },
            "publish_flip": {
                "count": publish_count,
                "total_seconds": round(publish_total, 6),
                "mean_seconds": (
                    round(publish_total / publish_count, 6)
                    if publish_count else None
                ),
            },
        }

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        from .catalog import CATALOG

        families: dict[str, list] = {}
        for metric in self._sorted_metrics():
            families.setdefault(metric.name, []).append(metric)
        lines: list[str] = []
        for name, metrics in families.items():
            kind, help_text = CATALOG[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for metric in metrics:
                if isinstance(metric, (Counter, Gauge)):
                    value = (
                        metric.value if isinstance(metric, Counter)
                        else float(metric.value)
                    )
                    lines.append(
                        f"{name}{_render_labels(metric.labels)} {value}"
                    )
                    continue
                cumulative = 0
                for bound, count in zip(
                    (*metric.bounds, float("inf")), metric.counts
                ):
                    cumulative += count
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    labels = _render_labels(
                        metric.labels, f'le="{_escape_label(le)}"'
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                rendered = _render_labels(metric.labels)
                lines.append(f"{name}_sum{rendered} {metric.total}")
                lines.append(f"{name}_count{rendered} {metric.count}")
        lines.append("")
        return "\n".join(lines)


#: The process-global registry.  Never replaced — only enabled, disabled,
#: or reset in place — so handles cached at import time stay valid.
OBS = MetricsRegistry()


# ----------------------------------------------------------------------
# Config precedence (level 2/3 of the EngineConfig knob order)
# ----------------------------------------------------------------------
#: Process-wide programmatic default for ``EngineConfig(observability=None)``
#: (level 2); ``None`` falls through to the ``REPRO_OBS`` env var.
_default_observability: bool | None = None


def get_default_observability() -> bool:
    """The observability default engines resolve against:
    ``set_default_observability`` > ``REPRO_OBS`` env var > off."""
    if _default_observability is not None:
        return _default_observability
    env = os.environ.get("REPRO_OBS")
    if env is not None:
        return env.strip().lower() in ("1", "true", "on", "yes")
    return False


def set_default_observability(value: bool | None) -> bool | None:
    """Set the process-wide default (``None`` = defer to the env var);
    returns the previous programmatic default."""
    global _default_observability
    previous = _default_observability
    _default_observability = value
    return previous


@contextmanager
def using_observability(value: bool | None) -> Iterator[bool]:
    """Scope the observability default — and, for an explicit ``True`` /
    ``False``, the registry's enabled state (``None`` leaves both
    untouched).  Restores both on exit."""
    if value is None:
        yield get_default_observability()
        return
    previous_default = set_default_observability(value)
    previous_enabled = OBS.enabled
    OBS.enabled = bool(value)
    try:
        yield bool(value)
    finally:
        set_default_observability(previous_default)
        OBS.enabled = previous_enabled
