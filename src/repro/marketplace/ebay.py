"""eBay-like marketplace simulator (the paper's Figure 21 experiment).

The live experiment monitored women's wrist watches on eBay for eight
hours (k=100, 250 queries/hour per algorithm), tracking the average
current price of Buy-It-Now ("FIX") versus bidding ("BID") listings.
The paper's observations, which the simulator's generating mechanisms
reproduce:

* FIX prices sit well above BID snapshots (a bid snapshot undercuts the
  eventual sale price; Buy-It-Now is the sticker price);
* BID listings churn and get re-priced far more often (every bid moves
  the current price; auctions end and new ones start hourly), which is
  why REISSUE/RS gain less over RESTART on BID than on FIX — the less
  the data changes, the bigger the reissuing advantage.
"""

from __future__ import annotations

import random

from ..data.schedules import (
    CompositeSchedule,
    FreshTupleSchedule,
    MeasureDriftSchedule,
    UpdateSchedule,
)
from ..data.synthetic import SyntheticSource, zipf_weights
from ..hiddendb.database import HiddenDatabase
from ..hiddendb.tuples import HiddenTuple
from .catalog import LISTING_FORMATS, sample_price, watch_schema

#: Index of the "format" attribute in the eBay schema (it is first).
FORMAT_ATTR_INDEX = 0
FIX_VALUE = LISTING_FORMATS.index("FIX")
BID_VALUE = LISTING_FORMATS.index("BID")

#: Auction snapshots start low and climb; Buy-It-Now is full price.
BID_SNAPSHOT_FACTOR = 0.45


def _listing_source(seed: int) -> SyntheticSource:
    schema = watch_schema(include_listing_format=True)
    weights = [zipf_weights(a.size, 0.6) for a in schema.attributes]

    def sampler(rng: random.Random) -> tuple[float, float]:
        # The categorical draw for "format" is independent of price here;
        # the BID discount is applied via the drift schedule's first pass
        # and at insert time below through the source wrapper.
        price = sample_price(rng)
        return price, price

    return SyntheticSource(schema, weights, measure_sampler=sampler, seed=seed)


class _BidAwareSource:
    """Wraps the synthetic source so fresh BID listings start low."""

    def __init__(self, source: SyntheticSource):
        self._source = source
        self.schema = source.schema

    def one(self, rng: random.Random):
        values, (price, base) = self._source.one(rng)
        if values[FORMAT_ATTR_INDEX] == BID_VALUE:
            start = round(base * BID_SNAPSHOT_FACTOR, 2)
            return values, (start, base)
        return values, (price, base)

    def batch(self, count: int, **kwargs):
        payloads = []
        for values, (price, base) in self._source.batch(count, **kwargs):
            if values[FORMAT_ATTR_INDEX] == BID_VALUE:
                payloads.append(
                    (values, (round(base * BID_SNAPSHOT_FACTOR, 2), base))
                )
            else:
                payloads.append((values, (price, base)))
        return payloads


def _is_bid(t: HiddenTuple) -> bool:
    return t.values[FORMAT_ATTR_INDEX] == BID_VALUE


def _bid_bump(
    t: HiddenTuple, rng: random.Random, round_index: int
) -> tuple[float, float]:
    """A new high bid: the current price climbs toward the base price."""
    price, base = t.measures
    climbed = min(base, round(price * rng.uniform(1.05, 1.35), 2))
    return climbed, base


def ebay_watch_env(
    seed: int,
    catalog_size: int = 16_000,
    bid_bump_fraction: float = 0.30,
    bid_churn_fraction: float = 0.08,
    fix_churn_fraction: float = 0.01,
) -> tuple[HiddenDatabase, UpdateSchedule]:
    """Build the women's-wrist-watch listing pool with hourly dynamics.

    BID listings get re-priced (``bid_bump_fraction`` per hour) and churn
    fast; FIX listings barely change — the asymmetry behind Figure 21.
    """
    source = _BidAwareSource(_listing_source(seed))
    db = HiddenDatabase(source.schema)
    for values, measures in source.batch(catalog_size):
        db.insert(values, measures)
    bumps = MeasureDriftSchedule(bid_bump_fraction, _bid_bump, selector=_is_bid)

    class _SplitChurn:
        """Replace a fraction of BID and FIX listings each hour."""

        def __init__(self) -> None:
            self._fresh = FreshTupleSchedule(source)

        def plan(self, database: HiddenDatabase, rng: random.Random):
            mutations = []
            bid_tids = [t.tid for t in database.tuples() if _is_bid(t)]
            fix_tids = [t.tid for t in database.tuples() if not _is_bid(t)]
            victims = rng.sample(
                bid_tids, int(len(bid_tids) * bid_churn_fraction)
            ) + rng.sample(fix_tids, int(len(fix_tids) * fix_churn_fraction))
            for tid in victims:

                def do_replace(victim: int = tid):
                    if victim not in database.store:
                        return
                    database.delete(victim)
                    values, measures = source.one(rng)
                    database.insert(values, measures)

                mutations.append(do_replace)
            rng.shuffle(mutations)
            return mutations

    return db, CompositeSchedule([bumps, _SplitChurn()])
