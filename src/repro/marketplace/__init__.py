"""Marketplace surrogates for the paper's live Amazon/eBay experiments."""

from .amazon import amazon_watch_env
from .catalog import watch_schema
from .ebay import ebay_watch_env

__all__ = ["amazon_watch_env", "ebay_watch_env", "watch_schema"]
