"""Amazon-like marketplace simulator (the paper's Figure 20 experiment).

The live experiment monitored all watches on Amazon during Thanksgiving
week 2013 (k=100, 1,000 queries/day) and observed a ~$50 average-price
drop on Thanksgiving/Black Friday while composition aggregates (the share
of men's watches, the share of wrist watches) stayed flat.

The simulator reproduces that generating mechanism: a stable catalog with
mild listing churn, and a promotion window during which a configurable
fraction of sellers discount their price (restored afterwards).  Because
we own the database, the harness can also score the estimates against
exact ground truth — something the paper could not do for this figure.
"""

from __future__ import annotations

import random

from ..data.schedules import (
    CompositeSchedule,
    FreshTupleSchedule,
    MeasureDriftSchedule,
    UpdateSchedule,
)
from ..data.synthetic import SyntheticSource, zipf_weights
from ..hiddendb.database import HiddenDatabase
from ..hiddendb.tuples import HiddenTuple
from .catalog import sample_price, watch_schema

#: Rounds are days; these are Thanksgiving (Nov 28) and Black Friday
#: (Nov 29) within the simulated Nov-27..Dec-3 week (round 1 = Nov 27).
DEFAULT_PROMO_ROUNDS = (2, 3)
DEFAULT_PROMO_DISCOUNT = 0.78
DEFAULT_PROMO_FRACTION = 0.55


def _watch_source(seed: int) -> SyntheticSource:
    schema = watch_schema(include_listing_format=False)
    weights = [zipf_weights(a.size, 0.6) for a in schema.attributes]

    def sampler(rng: random.Random) -> tuple[float, float]:
        price = sample_price(rng)
        return price, price  # price and its pre-promotion base

    return SyntheticSource(schema, weights, measure_sampler=sampler, seed=seed)


class _PromotionSchedule:
    """Applies/reverts Black-Friday discounts on promotion-day boundaries."""

    def __init__(
        self,
        promo_rounds: tuple[int, ...],
        discount: float,
        fraction: float,
    ):
        self.promo_rounds = frozenset(promo_rounds)
        self.discount = discount
        self._drift = MeasureDriftSchedule(fraction, self._reprice)
        self._restore = MeasureDriftSchedule(1.0, self._restore_price)
        self._promo_active = False

    def _reprice(
        self, t: HiddenTuple, rng: random.Random, round_index: int
    ) -> tuple[float, float]:
        base = t.measures[1]
        return round(base * self.discount, 2), base

    def _restore_price(
        self, t: HiddenTuple, rng: random.Random, round_index: int
    ) -> tuple[float, float]:
        base = t.measures[1]
        return base, base

    def plan(self, db: HiddenDatabase, rng: random.Random):
        upcoming = db.current_round + 1
        if upcoming in self.promo_rounds:
            if not self._promo_active:
                self._promo_active = True
                return self._drift.plan(db, rng)
            return []  # promotion continues; prices already discounted
        if self._promo_active:
            self._promo_active = False
            return self._restore.plan(db, rng)
        return []


def amazon_watch_env(
    seed: int,
    catalog_size: int = 12_000,
    churn_per_round: int = 120,
    promo_rounds: tuple[int, ...] = DEFAULT_PROMO_ROUNDS,
    promo_discount: float = DEFAULT_PROMO_DISCOUNT,
    promo_fraction: float = DEFAULT_PROMO_FRACTION,
) -> tuple[HiddenDatabase, UpdateSchedule]:
    """Build the Thanksgiving-week watch department.

    Returns a database plus a composite schedule: light daily listing churn
    and the promotion price wave on the configured rounds.
    """
    source = _watch_source(seed)
    db = HiddenDatabase(source.schema)
    for values, measures in source.batch(catalog_size):
        db.insert(values, measures)
    churn = FreshTupleSchedule(
        source,
        inserts_per_round=churn_per_round,
        deletes_per_round=churn_per_round,
    )
    promotion = _PromotionSchedule(promo_rounds, promo_discount, promo_fraction)
    return db, CompositeSchedule([churn, promotion])
