"""Shared product-catalog schema for the marketplace simulators.

Both live experiments in the paper monitor *watches*: Amazon's watch
department (Thanksgiving week 2013) and eBay's women's wrist watches.
The catalog schema is a plausible faceted-search layout: every attribute
is something those sites actually expose as a search refinement, and price
is a non-searchable measure (you can sort by it, not equality-filter it).
"""

from __future__ import annotations

import math
import random

from ..hiddendb.schema import Attribute, Schema

GENDERS = ("men", "women")
WATCH_TYPES = ("wrist", "pocket", "smart")
BRANDS = tuple(f"brand_{i:02d}" for i in range(24))
BAND_MATERIALS = ("leather", "steel", "silicone", "nylon", "ceramic", "gold")
MOVEMENTS = ("quartz", "automatic", "mechanical", "solar")
CONDITIONS = ("new", "used", "refurbished")
LISTING_FORMATS = ("FIX", "BID")
STYLES = ("casual", "dress", "sport", "luxury", "diver")
DIAL_COLORS = ("black", "white", "blue", "silver", "gold", "green", "red")
WATER_RESIST = ("none", "30m", "50m", "100m", "200m")


def watch_schema(include_listing_format: bool = False) -> Schema:
    """The watch catalog; eBay adds the Buy-It-Now vs bidding facet."""
    attributes = [
        Attribute("gender", GENDERS),
        Attribute("type", WATCH_TYPES),
        Attribute("brand", BRANDS),
        Attribute("band", BAND_MATERIALS),
        Attribute("movement", MOVEMENTS),
        Attribute("condition", CONDITIONS),
        Attribute("style", STYLES),
        Attribute("dial", DIAL_COLORS),
        Attribute("water", WATER_RESIST),
    ]
    if include_listing_format:
        attributes.insert(0, Attribute("format", LISTING_FORMATS))
    return Schema(attributes, measures=("price", "base_price"))


def sample_price(rng: random.Random, luxury_bias: float = 0.0) -> float:
    """Log-normal watch price; luxury bias shifts the whole distribution."""
    return round(math.exp(rng.gauss(4.6 + luxury_bias, 0.9)), 2)
