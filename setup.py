"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file exists so the package
can be installed editable (``python setup.py develop`` or
``pip install -e . --no-build-isolation``) in offline environments whose
setuptools lacks the ``wheel`` package needed by the PEP 517 path.
"""

from setuptools import setup

setup()
